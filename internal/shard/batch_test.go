package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lincheck"
)

// TestApplyBatchOracle: random batches spanning all shards match a map
// oracle op for op, including cross-shard ordering of duplicate keys.
func TestApplyBatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewRange(0, 999, 4)
	oracle := map[int64]bool{}
	for round := 0; round < 300; round++ {
		n := rng.Intn(32)
		ops := make([]core.BatchOp, n)
		for i := range ops {
			ops[i] = core.BatchOp{Kind: core.BatchKind(rng.Intn(3)), Key: int64(rng.Intn(1000))}
		}
		res := make([]bool, n)
		s.ApplyBatch(ops, res)
		for i, op := range ops {
			var want bool
			switch op.Kind {
			case core.BatchInsert:
				want = !oracle[op.Key]
				oracle[op.Key] = true
			case core.BatchDelete:
				want = oracle[op.Key]
				delete(oracle, op.Key)
			default:
				want = oracle[op.Key]
			}
			if res[i] != want {
				t.Fatalf("round %d op %d (%v %d): got %v, want %v", round, i, op.Kind, op.Key, res[i], want)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for range oracle {
		want++
	}
	if got := s.Len(); got != want {
		t.Fatalf("Len = %d, oracle %d", got, want)
	}
}

// TestApplyBatchLoadAccounting: batches feed the per-generation shard
// load counters the rebalancer reads, one count per applied op.
func TestApplyBatchLoadAccounting(t *testing.T) {
	s := NewRange(0, 999, 2)
	ops := []core.BatchOp{
		{Kind: core.BatchInsert, Key: 10},
		{Kind: core.BatchInsert, Key: 20},
		{Kind: core.BatchInsert, Key: 600},
	}
	s.ApplyBatch(ops, make([]bool, len(ops)))
	loads := s.ShardLoads()
	if loads[0] != 2 || loads[1] != 1 {
		t.Fatalf("ShardLoads = %v, want [2 1]", loads)
	}
}

// TestApplyBatchLincheck runs concurrent ApplyBatch traffic against
// Split/Merge churn and cross-shard scans; the full history (per-batch
// point ops plus scan observations) must pass the scan-aware checker.
// Any batched op stranded above a migration cut, or committing twice
// across a re-route, breaks it.
func TestApplyBatchLincheck(t *testing.T) {
	const (
		rounds   = 30
		workers  = 3
		batches  = 3
		batchLen = 4
		scanners = 2
		scansPer = 4
	)
	for round := 0; round < rounds; round++ {
		s := NewRange(0, 999, 2)
		// Ballast outside the scanned range so splits have room to move
		// the boundary on both sides.
		for k := int64(0); k < 100; k += 10 {
			s.Insert(k)
			s.Insert(900 + k)
		}
		var mu sync.Mutex
		var points []lincheck.Event
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(rng *rand.Rand) {
				defer wg.Done()
				<-start
				ops := make([]core.BatchOp, batchLen)
				res := make([]bool, batchLen)
				for b := 0; b < batches; b++ {
					for i := range ops {
						// Keys straddle the initial shard boundary (499|500)
						// inside the scanned window.
						ops[i] = core.BatchOp{Kind: core.BatchKind(rng.Intn(3)), Key: 499 + int64(rng.Intn(2))}
					}
					inv := time.Now().UnixNano()
					s.ApplyBatch(ops, res)
					resTs := time.Now().UnixNano()
					mu.Lock()
					for i, op := range ops {
						kind := lincheck.Find
						switch op.Kind {
						case core.BatchInsert:
							kind = lincheck.Insert
						case core.BatchDelete:
							kind = lincheck.Delete
						}
						points = append(points, lincheck.Event{
							Kind: kind, Key: op.Key, Ret: res[i], Inv: inv, Res: resTs,
						})
					}
					mu.Unlock()
				}
			}(rand.New(rand.NewSource(int64(round*workers + w))))
		}
		scanHistories := make([][]lincheck.ScanEvent, scanners)
		for w := 0; w < scanners; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < scansPer; i++ {
					inv := time.Now().UnixNano()
					keys := s.RangeScan(400, 699)
					scanHistories[w] = append(scanHistories[w], lincheck.ScanEvent{
						A: 400, B: 699, Keys: keys,
						Inv: inv, Res: time.Now().UnixNano(),
					})
				}
			}(w)
		}
		wg.Add(1)
		go func(round int) { // migration churn under the batches
			defer wg.Done()
			<-start
			for i := 0; i < 8; i++ {
				if p := s.Shards(); p < 4 {
					s.Split((round + i) % p) //nolint:errcheck // benign races expected
				} else {
					s.Merge((round + i) % (p - 1)) //nolint:errcheck
				}
			}
		}(round)
		close(start)
		wg.Wait()
		var scans []lincheck.ScanEvent
		for _, h := range scanHistories {
			scans = append(scans, h...)
		}
		if err := lincheck.CheckWithScans(points, scans); err != nil {
			t.Fatalf("round %d: batched history under rebalancing not linearizable: %v", round, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestApplyBatchMigrationCut is the deterministic migration-during-batch
// regression: a shard is sealed and cut exactly as a migration would,
// WHILE a batch targets it. No batched update may commit above the cut —
// the cut snapshot must not contain the batch's keys — and once the
// replacement table installs, the stalled remainder must re-route and
// complete against the new trees.
func TestApplyBatchMigrationCut(t *testing.T) {
	s := NewRange(0, 999, 2)
	s.Insert(100) // pre-existing key in shard 0, below the cut

	// Manual migration front half, exactly like splitLocked: seal shard 0
	// and cut. ApplyBatch must now refuse to commit updates there.
	s.migrateMu.Lock()
	tab := s.tab.Load()
	snaps, _ := s.cutShards(tab, 0, 0)

	done := make(chan []bool)
	go func() {
		ops := []core.BatchOp{
			{Kind: core.BatchInsert, Key: 200}, // shard 0: must stall until the install
			{Kind: core.BatchInsert, Key: 700}, // shard 1: unaffected by the cut
		}
		res := make([]bool, len(ops))
		s.ApplyBatch(ops, res)
		done <- res
	}()

	// The shard-1 half may commit immediately; the shard-0 half must not
	// land in the sealed tree, which can no longer change.
	deadline := time.After(2 * time.Second)
	for !s.Find(700) {
		select {
		case <-deadline:
			t.Fatal("unaffected shard-1 op did not complete while shard 0 was sealed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case <-done:
		t.Fatal("ApplyBatch returned while its shard was sealed with no replacement")
	case <-time.After(50 * time.Millisecond):
	}
	if snaps[0].Contains(200) {
		t.Fatal("batched insert visible in the migration cut snapshot")
	}
	if sealedLen := tab.trees[0].Len(); sealedLen != 1 {
		t.Fatalf("sealed tree changed after the cut: Len = %d, want 1", sealedLen)
	}

	// Back half of the migration: rebuild shard 0 from its snapshot and
	// install. The stalled batch op must re-route into the replacement.
	keys := snaps[0].Keys()
	nt, err := core.BuildFromSortedKeys(s.clock, keys)
	if err != nil {
		t.Fatal(err)
	}
	s.install(tab, 0, 0, tab.r.starts, []*core.Tree{nt})
	for _, snap := range snaps {
		snap.Release()
	}
	s.migrateMu.Unlock()

	res := <-done
	if !res[0] || !res[1] {
		t.Fatalf("batch results after re-route: %v, want both true", res)
	}
	for _, k := range []int64{100, 200, 700} {
		if !s.Find(k) {
			t.Fatalf("key %d missing after migration completed", k)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadBasic: a load merges with existing contents, counts only
// fresh keys, and leaves a structurally valid set.
func TestBulkLoadBasic(t *testing.T) {
	s := NewRange(0, 999, 4)
	for _, k := range []int64{5, 250, 500, 750} {
		s.Insert(k)
	}
	added, err := s.BulkLoad([]int64{1, 5, 300, 500, 801, 999})
	if err != nil {
		t.Fatal(err)
	}
	if added != 4 {
		t.Fatalf("added = %d, want 4", added)
	}
	if got, want := s.Len(), 8; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for _, k := range []int64{1, 5, 250, 300, 500, 750, 801, 999} {
		if !s.Find(k) {
			t.Fatalf("key %d missing after load", k)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The load is one migration-style table swap per call.
	if _, err := s.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadRejectsBadInput: unsorted/duplicate/out-of-range input
// fails without modifying the set.
func TestBulkLoadRejectsBadInput(t *testing.T) {
	s := NewRange(0, 999, 2)
	s.Insert(7)
	if _, err := s.BulkLoad([]int64{3, 2}); !errors.Is(err, ErrUnsortedBulkLoad) {
		t.Fatalf("unsorted: %v", err)
	}
	if _, err := s.BulkLoad([]int64{3, 3}); !errors.Is(err, ErrUnsortedBulkLoad) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := s.BulkLoad([]int64{1, core.MaxKey + 1}); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if s.Len() != 1 || !s.Find(7) {
		t.Fatal("rejected load modified the set")
	}
}

// TestBulkLoadRelaxedFallback: RelaxedScans sets (no shared clock) take
// the Insert-loop path with identical results.
func TestBulkLoadRelaxedFallback(t *testing.T) {
	s := NewRange(0, 999, 2, WithRelaxedScans())
	s.Insert(10)
	added, err := s.BulkLoad([]int64{5, 10, 15})
	if err != nil || added != 2 {
		t.Fatalf("relaxed load: %d, %v", added, err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

// TestBulkLoadConcurrentReaders: readers and updaters running through a
// load observe nothing torn — reads are wait-free across the table swap
// and updates re-route.
func TestBulkLoadConcurrentReaders(t *testing.T) {
	s := NewRange(0, 99_999, 4)
	for k := int64(0); k < 1000; k++ {
		s.Insert(k * 7 % 99_000)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64((i*13 + w) % 99_000)
				s.Find(k)
				if i%10 == 0 {
					s.Insert(99_001 + int64(w)) // hot keys outside the load
					s.Delete(99_001 + int64(w))
				}
			}
		}(w)
	}
	keys := make([]int64, 0, 5000)
	for k := int64(0); k < 5000; k++ {
		keys = append(keys, k*3+90) // overlaps the prefill range
	}
	if _, err := s.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	for _, k := range keys {
		if !s.Find(k) {
			t.Fatalf("loaded key %d missing", k)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
