package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestRouterPartition checks that the shards tile [MinKey, MaxKey]
// contiguously with no gaps or overlaps, for several shard counts.
func TestRouterPartition(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 16, 64} {
		r := NewRouter(p)
		if r.Shards() != p {
			t.Fatalf("p=%d: Shards() = %d", p, r.Shards())
		}
		lo0, _ := r.Bounds(0)
		if lo0 != core.MinKey {
			t.Fatalf("p=%d: shard 0 starts at %d, want MinKey", p, lo0)
		}
		_, hiLast := r.Bounds(p - 1)
		if hiLast != core.MaxKey {
			t.Fatalf("p=%d: last shard ends at %d, want MaxKey", p, hiLast)
		}
		for i := 0; i < p-1; i++ {
			_, hi := r.Bounds(i)
			nextLo, _ := r.Bounds(i + 1)
			if nextLo != hi+1 {
				t.Fatalf("p=%d: gap/overlap between shard %d (hi=%d) and %d (lo=%d)", p, i, hi, i+1, nextLo)
			}
		}
	}
}

// TestRouterOf checks that Of agrees with Bounds on boundary keys and on
// random keys.
func TestRouterOf(t *testing.T) {
	for _, r := range []Router{NewRouter(5), NewRouterRange(0, 1<<20, 8), NewRouterRange(-1000, 1000, 3)} {
		for i := 0; i < r.Shards(); i++ {
			lo, hi := r.Bounds(i)
			for _, k := range []int64{lo, hi} {
				if got := r.Of(k); got != i {
					t.Fatalf("Of(%d) = %d, want %d (bounds [%d,%d])", k, got, i, lo, hi)
				}
			}
		}
		rng := workload.NewRNG(1)
		for n := 0; n < 10000; n++ {
			k := int64(rng.Next())
			if k > core.MaxKey {
				continue
			}
			i := r.Of(k)
			lo, hi := r.Bounds(i)
			if k < lo || k > hi {
				t.Fatalf("Of(%d) = %d but bounds are [%d,%d]", k, i, lo, hi)
			}
		}
	}
}

// TestRouterRangeFocus checks that a range-focused router spreads the
// focus interval across all shards and still routes outside keys.
func TestRouterRangeFocus(t *testing.T) {
	const keys = 1 << 16
	r := NewRouterRange(0, keys-1, 4)
	seen := map[int]bool{}
	for k := int64(0); k < keys; k++ {
		seen[r.Of(k)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("focus range hit %d shards, want 4", len(seen))
	}
	if got := r.Of(core.MinKey); got != 0 {
		t.Fatalf("Of(MinKey) = %d, want 0", got)
	}
	if got := r.Of(core.MaxKey); got != 3 {
		t.Fatalf("Of(MaxKey) = %d, want 3", got)
	}
	// The focus interval splits evenly: each shard owns 2^14 focus keys.
	for i := 0; i < 4; i++ {
		lo, hi := r.Bounds(i)
		if lo < 0 {
			lo = 0
		}
		if hi > keys-1 {
			hi = keys - 1
		}
		if n := hi - lo + 1; n != keys/4 {
			t.Fatalf("shard %d owns %d focus keys, want %d", i, n, keys/4)
		}
	}
}

// TestRouterCovering checks shard selection for scan ranges, including
// empty and clamped ones.
func TestRouterCovering(t *testing.T) {
	r := NewRouterRange(0, 99, 4) // boundaries at 0,25,50,75 within focus
	cases := []struct {
		a, b        int64
		first, last int
	}{
		{0, 99, 0, 3},
		{10, 20, r.Of(10), r.Of(20)},
		{30, 80, 1, 3},
		{5, 3, 1, 0}, // empty
		{core.MinKey, core.MaxKey, 0, 3},
	}
	for _, c := range cases {
		first, last := r.Covering(c.a, c.b)
		if first != c.first || last != c.last {
			t.Fatalf("Covering(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, first, last, c.first, c.last)
		}
	}
}

// TestRouterPanics checks constructor validation.
func TestRouterPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-shards": func() { NewRouter(0) },
		"empty-range": func() { NewRouterRange(10, 5, 2) },
		"too-narrow":  func() { NewRouterRange(0, 1, 3) },
		"negative-p":  func() { NewRouter(-4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
