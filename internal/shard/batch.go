package shard

import (
	"runtime"

	"repro/internal/core"
)

// ApplyBatch applies a vector of point operations, writing each op's
// result (Insert: was absent; Delete: was present; Contains: is present)
// into res, which must be at least len(ops) long.
//
// The batch path exists to amortize the per-op fixed costs: the routing
// table is loaded ONCE for the whole vector, ops are grouped by
// destination shard (stably, so two ops on the same key — necessarily
// the same shard — keep their slice order), and each shard group runs
// through core.TryApplyOps, which holds one pin stripe and one cached
// phase read for the group instead of one per op (DESIGN.md §11).
//
// Semantics match the single-op path, not a transaction: every op is
// INDIVIDUALLY linearizable, with its linearization point inside the
// ApplyBatch call, and same-key ops take effect in slice order. The
// batch as a whole is explicitly NOT atomic — ops on different shards
// apply concurrently with unrelated traffic, and a scan can observe any
// subset of the batch's effects.
//
// Migrations are handled the way openPhase handles them for reads and
// Insert/Delete do for updates: a group landing on a shard sealed by a
// concurrent Split/Merge fails its per-attempt seal check inside
// TryApplyOps (no op ever commits above the migration cut — core.Seal),
// and the unapplied remainder re-routes through the replacement table
// after a yield. Ops that committed before the seal are part of the
// migration snapshot, so the re-routed remainder observes them.
func (s *Set) ApplyBatch(ops []core.BatchOp, res []bool) {
	s.ApplyBatchPhases(ops, res, nil)
}

// ApplyBatchPhases is ApplyBatch that additionally records each op's
// deciding phase into phases (ignored when nil, else at least len(ops)
// long), with core.TryApplyOpsPhases' contract: for effective
// Insert/Delete ops this is the exact commit phase. Durability stamps
// the per-op records of an MBATCH with these.
func (s *Set) ApplyBatchPhases(ops []core.BatchOp, res []bool, phases []uint64) {
	if len(res) < len(ops) {
		panic("shard: ApplyBatch result slice shorter than ops")
	}
	if phases != nil && len(phases) < len(ops) {
		panic("shard: ApplyBatchPhases phase slice shorter than ops")
	}
	if len(ops) == 0 {
		return
	}
	n := len(ops)
	pos := make([]int, n) // positions into ops still to apply, batch order
	for i := range pos {
		pos[i] = i
	}
	var (
		order = make([]int, n)          // pos regrouped by destination shard
		gops  = make([]core.BatchOp, n) // per-group op scratch
		gres  = make([]bool, n)         // per-group result scratch
		gph   []uint64                  // per-group phase scratch
	)
	if phases != nil {
		gph = make([]uint64, n)
	}
	for {
		tab := s.tab.Load()
		p := len(tab.trees)
		// Stable counting sort of the remaining positions by shard: one
		// Router resolution per op per table generation, not per attempt.
		shardOf := make([]int, len(pos))
		heads := make([]int, p+1)
		for j, i := range pos {
			g := tab.r.Of(ops[i].Key)
			shardOf[j] = g
			heads[g+1]++
		}
		for g := 0; g < p; g++ {
			heads[g+1] += heads[g]
		}
		next := make([]int, p)
		copy(next, heads[:p])
		order = order[:len(pos)]
		for j, i := range pos {
			g := shardOf[j]
			order[next[g]] = i
			next[g]++
		}
		rem := pos[:0] // positions whose shard sealed mid-group
		for g := 0; g < p; g++ {
			lo, hi := heads[g], heads[g+1]
			if lo == hi {
				continue
			}
			seg := order[lo:hi]
			for j, i := range seg {
				gops[j] = ops[i]
			}
			var segPh []uint64
			if gph != nil {
				segPh = gph[:len(seg)]
			}
			applied, ok := tab.trees[g].TryApplyOpsPhases(gops[:len(seg)], gres[:len(seg)], segPh)
			for j := 0; j < applied; j++ {
				res[seg[j]] = gres[j]
				if gph != nil {
					phases[seg[j]] = gph[j]
				}
			}
			if applied > 0 {
				tab.loads[g].addN(ops[seg[0]].Key, uint64(applied))
			}
			if !ok {
				rem = append(rem, seg[applied:]...)
			}
		}
		if len(rem) == 0 {
			return
		}
		pos = rem
		runtime.Gosched() // owning shard(s) mid-migration; wait for the swap
	}
}
