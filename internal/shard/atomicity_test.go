package shard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/lincheck"
)

// The cross-boundary move tests pin the tentpole property: a scan
// spanning a shard boundary is ONE atomic cut. The adversarial schedule
// is deterministic — the scan's visitor callback runs between the
// shard-0 cut and the shard-1 cut, and performs the racing move right
// there — so the §5.2 anomaly is forced, not hoped for. On the shared
// clock the move lands in a later phase than the scan and is invisible;
// on relaxed sets the move is visible to the not-yet-cut shard only,
// splitting the scan across two states.

// moveScan runs the deterministic schedule: a 2-shard set over [0, 999]
// (boundary 500) holding sentinel k0=100 plus the "item" at exactly one
// of home=400 (shard 0) or away=600 (shard 1); mid-scan, the visitor
// moves the item to the other side (inserting the new location before
// deleting the old, or the reverse). Returns the scanned keys.
func moveScan(s *Set, item, dest int64, insertFirst bool) []int64 {
	moved := false
	var got []int64
	s.RangeScanFunc(0, 999, func(k int64) bool {
		if !moved {
			moved = true
			if insertFirst {
				s.Insert(dest)
				s.Delete(item)
			} else {
				s.Delete(item)
				s.Insert(dest)
			}
		}
		got = append(got, k)
		return true
	})
	return got
}

// TestCrossShardScanAtomicCut: on the default (shared-clock) set, both
// move directions are invisible to the in-flight scan — it reports
// exactly the pre-move state, the atomic cut of its phase.
func TestCrossShardScanAtomicCut(t *testing.T) {
	for _, tc := range []struct {
		name        string
		item, dest  int64
		insertFirst bool
	}{
		{"move right into shard 1, union never empty", 600, 400, true},
		{"move left out of shard 0, both never present", 400, 600, false},
	} {
		s := NewRange(0, 999, 2)
		s.Insert(100)
		s.Insert(tc.item)
		got := moveScan(s, tc.item, tc.dest, tc.insertFirst)
		want := []int64{100, tc.item}
		if tc.item < 100 {
			want = []int64{tc.item, 100}
		}
		if !equal(got, want) {
			t.Fatalf("%s: scan = %v, want pre-move cut %v", tc.name, got, want)
		}
	}
}

// TestRelaxedCrossShardAnomaly pins the documented §5.2 relaxation —
// and is exactly what Set.RangeScanFunc did for ALL sets before the
// shared clock: the same schedules produce results no single instant of
// the set ever held (the item vanishes entirely, or appears on both
// sides of the boundary at once).
func TestRelaxedCrossShardAnomaly(t *testing.T) {
	// Item moves from shard 1 to shard 0: the insert lands in the
	// already-cut shard (invisible), the delete in the not-yet-cut shard
	// (visible) — the scan sees NEITHER location, though the union was
	// never empty.
	s := NewRange(0, 999, 2, WithRelaxedScans())
	s.Insert(100)
	s.Insert(600)
	if got := moveScan(s, 600, 400, true); !equal(got, []int64{100}) {
		t.Fatalf("relaxed move-left scan = %v, want the anomalous [100]", got)
	}
	// Item moves from shard 0 to shard 1: the delete is invisible, the
	// insert visible — the scan sees BOTH locations, though at most one
	// was ever present.
	s = NewRange(0, 999, 2, WithRelaxedScans())
	s.Insert(100)
	s.Insert(400)
	if got := moveScan(s, 400, 600, false); !equal(got, []int64{100, 400, 600}) {
		t.Fatalf("relaxed move-right scan = %v, want the anomalous [100 400 600]", got)
	}
}

// TestCrossShardSnapshotAtomicCut: the composite snapshot captures one
// shared phase, and a snapshot taken mid-"move" (between the two point
// ops) reports the intermediate state — not a torn one.
func TestCrossShardSnapshotAtomicCut(t *testing.T) {
	s := NewRange(0, 999, 2)
	s.Insert(400)
	snapBefore := s.Snapshot()
	s.Insert(600) // move right: insert new home...
	snapMid := s.Snapshot()
	s.Delete(400) // ...then delete the old
	snapAfter := s.Snapshot()
	for _, c := range []struct {
		name string
		snap *Snapshot
		want []int64
	}{
		{"before", snapBefore, []int64{400}},
		{"mid", snapMid, []int64{400, 600}},
		{"after", snapAfter, []int64{600}},
	} {
		if got := c.snap.Keys(); !equal(got, c.want) {
			t.Fatalf("snapshot %s = %v, want %v", c.name, got, c.want)
		}
		if seq, ok := c.snap.Seq(); !ok {
			t.Fatalf("snapshot %s: no shared phase (seq=%d)", c.name, seq)
		}
		if !c.snap.Atomic() {
			t.Fatalf("snapshot %s not atomic", c.name)
		}
	}
	if _, ok := NewRange(0, 9, 2, WithRelaxedScans()).Snapshot().Seq(); ok {
		t.Fatal("relaxed composite snapshot claims a single shared phase")
	}
}

// TestCrossShardMoveLincheck is the concurrent regression: a mover
// shuttles an item across a shard boundary while scanners take
// cross-boundary range scans; the full history (point ops + scan
// observations) must be linearizable per the scan-aware checker backed
// by the seqset oracle. This fails on relaxed-style composition whenever
// a scan straddles a move; with the shared clock it must always pass.
func TestCrossShardMoveLincheck(t *testing.T) {
	const (
		rounds   = 40
		kL, kR   = 499, 500 // adjacent keys on opposite sides of the boundary
		moves    = 8
		scanners = 2
		scansPer = 5
	)
	for round := 0; round < rounds; round++ {
		s := NewRange(0, 999, 2)
		var points []lincheck.Event
		record := func(kind lincheck.OpKind, k int64, inv int64, ret bool) {
			points = append(points, lincheck.Event{
				Kind: kind, Key: k, Ret: ret, Inv: inv, Res: time.Now().UnixNano(),
			})
		}
		inv := time.Now().UnixNano()
		record(lincheck.Insert, kL, inv, s.Insert(kL))

		scanHistories := make([][]lincheck.ScanEvent, scanners)
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(1)
		go func() { // the mover
			defer wg.Done()
			<-start
			src, dst := int64(kL), int64(kR)
			for i := 0; i < moves; i++ {
				inv := time.Now().UnixNano()
				record(lincheck.Insert, dst, inv, s.Insert(dst))
				inv = time.Now().UnixNano()
				record(lincheck.Delete, src, inv, s.Delete(src))
				src, dst = dst, src
			}
		}()
		for w := 0; w < scanners; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < scansPer; i++ {
					inv := time.Now().UnixNano()
					keys := s.RangeScan(0, 999)
					scanHistories[w] = append(scanHistories[w], lincheck.ScanEvent{
						A: 0, B: 999, Keys: keys,
						Inv: inv, Res: time.Now().UnixNano(),
					})
				}
			}(w)
		}
		close(start)
		wg.Wait()
		var scans []lincheck.ScanEvent
		for _, h := range scanHistories {
			scans = append(scans, h...)
		}
		if err := lincheck.CheckWithScans(points, scans); err != nil {
			t.Fatalf("round %d: cross-boundary scan history not linearizable: %v", round, err)
		}
	}
}

// TestStatsLogicalScans is the table test for the Scans counter's
// definition: one logical phase-opening read operation on the set counts
// ONCE, however many shards it touches — with the shared clock a
// cross-shard scan opens one phase; summing per-shard counters (the old
// aggregation) would have counted it up to P times.
func TestStatsLogicalScans(t *testing.T) {
	prefill := []int64{10, 110, 210, 310} // one key per shard of NewRange(0, 399, 4)
	cases := []struct {
		name    string
		relaxed bool
		run     func(s *Set)
		want    uint64
	}{
		{"scan spanning all shards", false, func(s *Set) { s.RangeScan(0, 399) }, 1},
		{"scan spanning all shards, relaxed", true, func(s *Set) { s.RangeScan(0, 399) }, 1},
		{"single-shard scan", false, func(s *Set) { s.RangeScan(0, 50) }, 1},
		{"empty-range scan opens no phase", false, func(s *Set) { s.RangeScan(50, 40) }, 0},
		{"count and len", false, func(s *Set) { s.RangeCount(0, 399); s.Len() }, 2},
		{"count and len, relaxed", true, func(s *Set) { s.RangeCount(0, 399); s.Len() }, 2},
		{"snapshot", false, func(s *Set) { s.Snapshot().Release() }, 1},
		{"snapshot, relaxed", true, func(s *Set) { s.Snapshot().Release() }, 1},
		{"ordered queries", false, func(s *Set) { s.Min(); s.Max(); s.Succ(10); s.Pred(310) }, 4},
		{"ordered queries, relaxed", true, func(s *Set) { s.Min(); s.Max(); s.Succ(10); s.Pred(310) }, 4},
		{"point ops are not scans", false, func(s *Set) { s.Insert(5); s.Find(5); s.Delete(5) }, 0},
		{"ten wide scans", false, func(s *Set) {
			for i := 0; i < 10; i++ {
				s.RangeScan(0, 399)
			}
		}, 10},
	}
	for _, tc := range cases {
		var opts []Option
		if tc.relaxed {
			opts = append(opts, WithRelaxedScans())
		}
		s := NewRange(0, 399, 4, opts...)
		for _, k := range prefill {
			s.Insert(k)
		}
		tc.run(s)
		if got := s.Stats().Scans; got != tc.want {
			t.Errorf("%s: Stats().Scans = %d, want %d", tc.name, got, tc.want)
		}
		s.ResetStats()
		if got := s.Stats().Scans; got != 0 {
			t.Errorf("%s: Scans = %d after ResetStats", tc.name, got)
		}
	}
}
