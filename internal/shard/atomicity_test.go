package shard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/lincheck"
)

// The cross-boundary move tests pin the tentpole property: a scan
// spanning a shard boundary is ONE atomic cut. The adversarial schedule
// is deterministic — the scan's visitor callback runs between the
// shard-0 cut and the shard-1 cut, and performs the racing move right
// there — so the §5.2 anomaly is forced, not hoped for. On the shared
// clock the move lands in a later phase than the scan and is invisible;
// on relaxed sets the move is visible to the not-yet-cut shard only,
// splitting the scan across two states.

// moveScan runs the deterministic schedule: a 2-shard set over [0, 999]
// (boundary 500) holding sentinel k0=100 plus the "item" at exactly one
// of home=400 (shard 0) or away=600 (shard 1); mid-scan, the visitor
// moves the item to the other side (inserting the new location before
// deleting the old, or the reverse). Returns the scanned keys.
func moveScan(s *Set, item, dest int64, insertFirst bool) []int64 {
	moved := false
	var got []int64
	s.RangeScanFunc(0, 999, func(k int64) bool {
		if !moved {
			moved = true
			if insertFirst {
				s.Insert(dest)
				s.Delete(item)
			} else {
				s.Delete(item)
				s.Insert(dest)
			}
		}
		got = append(got, k)
		return true
	})
	return got
}

// TestCrossShardScanAtomicCut: on the default (shared-clock) set, both
// move directions are invisible to the in-flight scan — it reports
// exactly the pre-move state, the atomic cut of its phase.
func TestCrossShardScanAtomicCut(t *testing.T) {
	for _, tc := range []struct {
		name        string
		item, dest  int64
		insertFirst bool
	}{
		{"move right into shard 1, union never empty", 600, 400, true},
		{"move left out of shard 0, both never present", 400, 600, false},
	} {
		s := NewRange(0, 999, 2)
		s.Insert(100)
		s.Insert(tc.item)
		got := moveScan(s, tc.item, tc.dest, tc.insertFirst)
		want := []int64{100, tc.item}
		if tc.item < 100 {
			want = []int64{tc.item, 100}
		}
		if !equal(got, want) {
			t.Fatalf("%s: scan = %v, want pre-move cut %v", tc.name, got, want)
		}
	}
}

// TestRelaxedCrossShardAnomaly pins the documented §5.2 relaxation —
// and is exactly what Set.RangeScanFunc did for ALL sets before the
// shared clock: the same schedules produce results no single instant of
// the set ever held (the item vanishes entirely, or appears on both
// sides of the boundary at once).
func TestRelaxedCrossShardAnomaly(t *testing.T) {
	// Item moves from shard 1 to shard 0: the insert lands in the
	// already-cut shard (invisible), the delete in the not-yet-cut shard
	// (visible) — the scan sees NEITHER location, though the union was
	// never empty.
	s := NewRange(0, 999, 2, WithRelaxedScans())
	s.Insert(100)
	s.Insert(600)
	if got := moveScan(s, 600, 400, true); !equal(got, []int64{100}) {
		t.Fatalf("relaxed move-left scan = %v, want the anomalous [100]", got)
	}
	// Item moves from shard 0 to shard 1: the delete is invisible, the
	// insert visible — the scan sees BOTH locations, though at most one
	// was ever present.
	s = NewRange(0, 999, 2, WithRelaxedScans())
	s.Insert(100)
	s.Insert(400)
	if got := moveScan(s, 400, 600, false); !equal(got, []int64{100, 400, 600}) {
		t.Fatalf("relaxed move-right scan = %v, want the anomalous [100 400 600]", got)
	}
}

// TestCrossShardSnapshotAtomicCut: the composite snapshot captures one
// shared phase, and a snapshot taken mid-"move" (between the two point
// ops) reports the intermediate state — not a torn one.
func TestCrossShardSnapshotAtomicCut(t *testing.T) {
	s := NewRange(0, 999, 2)
	s.Insert(400)
	snapBefore := s.Snapshot()
	s.Insert(600) // move right: insert new home...
	snapMid := s.Snapshot()
	s.Delete(400) // ...then delete the old
	snapAfter := s.Snapshot()
	for _, c := range []struct {
		name string
		snap *Snapshot
		want []int64
	}{
		{"before", snapBefore, []int64{400}},
		{"mid", snapMid, []int64{400, 600}},
		{"after", snapAfter, []int64{600}},
	} {
		if got := c.snap.Keys(); !equal(got, c.want) {
			t.Fatalf("snapshot %s = %v, want %v", c.name, got, c.want)
		}
		if seq, ok := c.snap.Seq(); !ok {
			t.Fatalf("snapshot %s: no shared phase (seq=%d)", c.name, seq)
		}
		if !c.snap.Atomic() {
			t.Fatalf("snapshot %s not atomic", c.name)
		}
	}
	if _, ok := NewRange(0, 9, 2, WithRelaxedScans()).Snapshot().Seq(); ok {
		t.Fatal("relaxed composite snapshot claims a single shared phase")
	}
}

// TestCrossShardMoveLincheck is the concurrent regression: a mover
// shuttles an item across a shard boundary while scanners take
// cross-boundary range scans; the full history (point ops + scan
// observations) must be linearizable per the scan-aware checker backed
// by the seqset oracle. This fails on relaxed-style composition whenever
// a scan straddles a move; with the shared clock it must always pass.
func TestCrossShardMoveLincheck(t *testing.T) {
	const (
		rounds   = 40
		kL, kR   = 499, 500 // adjacent keys on opposite sides of the boundary
		moves    = 8
		scanners = 2
		scansPer = 5
	)
	for round := 0; round < rounds; round++ {
		s := NewRange(0, 999, 2)
		var points []lincheck.Event
		record := func(kind lincheck.OpKind, k int64, inv int64, ret bool) {
			points = append(points, lincheck.Event{
				Kind: kind, Key: k, Ret: ret, Inv: inv, Res: time.Now().UnixNano(),
			})
		}
		inv := time.Now().UnixNano()
		record(lincheck.Insert, kL, inv, s.Insert(kL))

		scanHistories := make([][]lincheck.ScanEvent, scanners)
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(1)
		go func() { // the mover
			defer wg.Done()
			<-start
			src, dst := int64(kL), int64(kR)
			for i := 0; i < moves; i++ {
				inv := time.Now().UnixNano()
				record(lincheck.Insert, dst, inv, s.Insert(dst))
				inv = time.Now().UnixNano()
				record(lincheck.Delete, src, inv, s.Delete(src))
				src, dst = dst, src
			}
		}()
		for w := 0; w < scanners; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < scansPer; i++ {
					inv := time.Now().UnixNano()
					keys := s.RangeScan(0, 999)
					scanHistories[w] = append(scanHistories[w], lincheck.ScanEvent{
						A: 0, B: 999, Keys: keys,
						Inv: inv, Res: time.Now().UnixNano(),
					})
				}
			}(w)
		}
		close(start)
		wg.Wait()
		var scans []lincheck.ScanEvent
		for _, h := range scanHistories {
			scans = append(scans, h...)
		}
		if err := lincheck.CheckWithScans(points, scans); err != nil {
			t.Fatalf("round %d: cross-boundary scan history not linearizable: %v", round, err)
		}
	}
}

// TestSplitDuringScanAtomicCut is the deterministic split-during-scan
// regression: mid-scan (from the visitor, i.e. strictly between visits
// of an in-flight atomic scan), shard 0 is split so that the NEW
// boundary lands inside the scanned range, and a move is performed
// across that new boundary. The scan owns a phase opened before the
// migration cut, so it must observe exactly the pre-split, pre-move
// state — the single-phase cut — with zero tears, even though it
// finishes traversing trees that are no longer in the routing table.
func TestSplitDuringScanAtomicCut(t *testing.T) {
	s := NewRange(0, 999, 2) // boundary at 500
	for _, k := range []int64{100, 400, 600} {
		s.Insert(k)
	}
	migrated := false
	var got []int64
	s.RangeScanFunc(0, 999, func(k int64) bool {
		if !migrated {
			migrated = true
			// Split shard 0 at the median of {100, 400}: new boundary 400,
			// inside this scan's range.
			if err := s.Split(0); err != nil {
				t.Fatalf("split during scan: %v", err)
			}
			if s.Shards() != 3 {
				t.Fatalf("Shards() = %d mid-scan, want 3", s.Shards())
			}
			// Move a key across the NEW boundary both ways: 100 (left of
			// it) moves to 450 (right of it). Neither side may be torn
			// into the in-flight scan.
			s.Insert(450)
			s.Delete(100)
		}
		got = append(got, k)
		return true
	})
	if want := []int64{100, 400, 600}; !equal(got, want) {
		t.Fatalf("scan through a split = %v, want the pre-split cut %v", got, want)
	}
	// The live set reflects the move, and the split boundary is the
	// median key.
	if want := []int64{400, 450, 600}; !equal(s.Keys(), want) {
		t.Fatalf("post-scan keys = %v, want %v", s.Keys(), want)
	}
	if lo, _ := s.Router().Bounds(1); lo != 400 {
		t.Fatalf("split boundary = %d, want the median 400", lo)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeDuringScanAtomicCut is the same schedule with the boundary
// REMOVED mid-scan: the two-shard set is merged into one while a
// cross-boundary scan is in flight, and a move races right behind the
// merge. The scan must still report its own phase's cut.
func TestMergeDuringScanAtomicCut(t *testing.T) {
	s := NewRange(0, 999, 2)
	for _, k := range []int64{100, 600} {
		s.Insert(k)
	}
	migrated := false
	var got []int64
	s.RangeScanFunc(0, 999, func(k int64) bool {
		if !migrated {
			migrated = true
			if err := s.Merge(0); err != nil {
				t.Fatalf("merge during scan: %v", err)
			}
			s.Insert(300)
			s.Delete(600)
		}
		got = append(got, k)
		return true
	})
	if want := []int64{100, 600}; !equal(got, want) {
		t.Fatalf("scan through a merge = %v, want the pre-merge cut %v", got, want)
	}
	if want := []int64{100, 300}; !equal(s.Keys(), want) {
		t.Fatalf("post-scan keys = %v, want %v", s.Keys(), want)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceLincheck extends the cross-boundary lincheck rounds with
// a concurrent rebalancer: a mover shuttles an item across the (moving)
// shard boundary, scanners take cross-boundary range scans, and a
// splitter goroutine splits and re-merges the shards the whole time.
// The complete history — point ops plus scan observations — must stay
// linearizable per the scan-aware checker; any update stranded above a
// migration cut, or any scan observing half a migration, fails it.
func TestRebalanceLincheck(t *testing.T) {
	const (
		rounds   = 30
		kL, kR   = 499, 500
		moves    = 6
		scanners = 2
		scansPer = 4
	)
	for round := 0; round < rounds; round++ {
		s := NewRange(0, 999, 2)
		// A little ballast so splits have medians on both sides of the
		// boundary; ballast keys are outside every scanned range.
		// (Scans cover [400, 699]; ballast sits in [0, 99] and [900, 999].)
		for k := int64(0); k < 100; k += 10 {
			s.Insert(k)
			s.Insert(900 + k)
		}
		var mu sync.Mutex
		var points []lincheck.Event
		record := func(kind lincheck.OpKind, k int64, inv int64, ret bool) {
			mu.Lock()
			points = append(points, lincheck.Event{
				Kind: kind, Key: k, Ret: ret, Inv: inv, Res: time.Now().UnixNano(),
			})
			mu.Unlock()
		}
		inv := time.Now().UnixNano()
		record(lincheck.Insert, kL, inv, s.Insert(kL))

		scanHistories := make([][]lincheck.ScanEvent, scanners)
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(1)
		go func() { // the mover
			defer wg.Done()
			<-start
			src, dst := int64(kL), int64(kR)
			for i := 0; i < moves; i++ {
				inv := time.Now().UnixNano()
				record(lincheck.Insert, dst, inv, s.Insert(dst))
				inv = time.Now().UnixNano()
				record(lincheck.Delete, src, inv, s.Delete(src))
				src, dst = dst, src
			}
		}()
		for w := 0; w < scanners; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < scansPer; i++ {
					inv := time.Now().UnixNano()
					keys := s.RangeScan(400, 699)
					scanHistories[w] = append(scanHistories[w], lincheck.ScanEvent{
						A: 400, B: 699, Keys: keys,
						Inv: inv, Res: time.Now().UnixNano(),
					})
				}
			}(w)
		}
		wg.Add(1)
		go func(round int) { // the splitter: churn the routing table
			defer wg.Done()
			<-start
			for i := 0; i < 8; i++ {
				if p := s.Shards(); p < 4 {
					s.Split((round + i) % p) //nolint:errcheck // benign races expected
				} else {
					s.Merge((round + i) % (p - 1)) //nolint:errcheck
				}
			}
		}(round)
		close(start)
		wg.Wait()
		var scans []lincheck.ScanEvent
		for _, h := range scanHistories {
			scans = append(scans, h...)
		}
		if err := lincheck.CheckWithScans(points, scans); err != nil {
			t.Fatalf("round %d: history under rebalancing not linearizable: %v", round, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestStatsLogicalScans is the table test for the Scans counter's
// definition: one logical phase-opening read operation on the set counts
// ONCE, however many shards it touches — with the shared clock a
// cross-shard scan opens one phase; summing per-shard counters (the old
// aggregation) would have counted it up to P times.
func TestStatsLogicalScans(t *testing.T) {
	prefill := []int64{10, 110, 210, 310} // one key per shard of NewRange(0, 399, 4)
	cases := []struct {
		name    string
		relaxed bool
		run     func(s *Set)
		want    uint64
	}{
		{"scan spanning all shards", false, func(s *Set) { s.RangeScan(0, 399) }, 1},
		{"scan spanning all shards, relaxed", true, func(s *Set) { s.RangeScan(0, 399) }, 1},
		{"single-shard scan", false, func(s *Set) { s.RangeScan(0, 50) }, 1},
		{"empty-range scan opens no phase", false, func(s *Set) { s.RangeScan(50, 40) }, 0},
		{"count and len", false, func(s *Set) { s.RangeCount(0, 399); s.Len() }, 2},
		{"count and len, relaxed", true, func(s *Set) { s.RangeCount(0, 399); s.Len() }, 2},
		{"snapshot", false, func(s *Set) { s.Snapshot().Release() }, 1},
		{"snapshot, relaxed", true, func(s *Set) { s.Snapshot().Release() }, 1},
		{"ordered queries", false, func(s *Set) { s.Min(); s.Max(); s.Succ(10); s.Pred(310) }, 4},
		{"ordered queries, relaxed", true, func(s *Set) { s.Min(); s.Max(); s.Succ(10); s.Pred(310) }, 4},
		{"point ops are not scans", false, func(s *Set) { s.Insert(5); s.Find(5); s.Delete(5) }, 0},
		{"ten wide scans", false, func(s *Set) {
			for i := 0; i < 10; i++ {
				s.RangeScan(0, 399)
			}
		}, 10},
	}
	for _, tc := range cases {
		var opts []Option
		if tc.relaxed {
			opts = append(opts, WithRelaxedScans())
		}
		s := NewRange(0, 399, 4, opts...)
		for _, k := range prefill {
			s.Insert(k)
		}
		tc.run(s)
		if got := s.Stats().Scans; got != tc.want {
			t.Errorf("%s: Stats().Scans = %d, want %d", tc.name, got, tc.want)
		}
		s.ResetStats()
		if got := s.Stats().Scans; got != 0 {
			t.Errorf("%s: Scans = %d after ResetStats", tc.name, got)
		}
	}
}
