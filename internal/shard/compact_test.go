package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestCompactReclaimsAcrossShards: churn a sharded set, verify the
// summed version graph retains Θ(updates) without pruning and collapses
// to O(set size) after Compact, preserving contents and invariants.
func TestCompactReclaimsAcrossShards(t *testing.T) {
	const keySpace, updates = 1 << 10, 30_000
	s := NewRange(0, keySpace-1, 8)
	rng := workload.NewRNG(5)
	for i := 0; i < updates; i++ {
		k := rng.Intn(keySpace)
		if rng.Intn(2) == 0 {
			s.Insert(k)
		} else {
			s.Delete(k)
		}
	}
	want := s.Keys()

	before := s.VersionGraphSize()
	if before < updates/4 {
		t.Fatalf("unpruned version graph = %d after %d updates", before, updates)
	}
	cs := s.Compact()
	after := s.VersionGraphSize()
	if limit := 4*s.Len() + 128*s.Shards(); after > limit {
		t.Fatalf("post-Compact graph = %d nodes for %d keys over %d shards (limit %d)",
			after, s.Len(), s.Shards(), limit)
	}
	if cs.PrunedLinks == 0 || cs.LiveNodes != after {
		t.Fatalf("CompactStats = %+v, want PrunedLinks > 0 and LiveNodes == %d", cs, after)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Compact changed contents: %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Compact changed contents at %d", i)
		}
	}
}

// TestCompositeSnapshotPinsEveryShard: a composite snapshot must stay
// readable through churn + Compact on every shard it covers, and its
// Release must unpin all of them.
func TestCompositeSnapshotPinsEveryShard(t *testing.T) {
	const keySpace = 1 << 9
	s := NewRange(0, keySpace-1, 4)
	rng := workload.NewRNG(11)
	for i := 0; i < keySpace/2; i++ {
		s.Insert(rng.Intn(keySpace))
	}
	snap := s.Snapshot()
	want := snap.Keys()

	for i := 0; i < 20_000; i++ {
		k := rng.Intn(keySpace)
		if rng.Intn(2) == 0 {
			s.Insert(k)
		} else {
			s.Delete(k)
		}
	}
	s.Compact() // all four shards prune, each pinned at the snapshot's phase
	got := snap.Keys()
	if len(got) != len(want) {
		t.Fatalf("composite snapshot changed under Compact: %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("composite snapshot changed at %d: %d != %d", i, got[i], want[i])
		}
	}
	pinned := s.VersionGraphSize()
	snap.Release()
	s.Compact()
	if reclaimed := s.VersionGraphSize(); reclaimed >= pinned {
		t.Fatalf("Release + Compact did not reclaim: %d -> %d", pinned, reclaimed)
	}
}

// TestCompactConcurrentWithShardedOps: pruners racing updaters, scanners
// and snapshotters on a sharded set; run under -race in CI.
func TestCompactConcurrentWithShardedOps(t *testing.T) {
	const keySpace = 1 << 9
	s := NewRange(0, keySpace-1, 4)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 23)
			for !stop.Load() {
				k := rng.Intn(keySpace)
				if rng.Intn(2) == 0 {
					s.Insert(k)
				} else {
					s.Delete(k)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			s.Compact()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := workload.NewRNG(91)
		for !stop.Load() {
			a := rng.Intn(keySpace)
			b := a + rng.Intn(keySpace/2)
			prev := int64(-1)
			s.RangeScanFunc(a, b, func(k int64) bool {
				if k < a || k > b || k <= prev {
					select {
					case errc <- errMalformed:
					default:
					}
					return false
				}
				prev = k
				return true
			})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := s.Snapshot()
			a, b := snap.Len(), snap.Len()
			snap.Release()
			if a != b {
				select {
				case errc <- errUnstable:
				default:
				}
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

var (
	errMalformed = errString("malformed scan under concurrent Compact")
	errUnstable  = errString("unstable snapshot under concurrent Compact")
)

type errString string

func (e errString) Error() string { return string(e) }
