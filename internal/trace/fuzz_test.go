package trace

import (
	"testing"

	"repro/bst"
	"repro/internal/workload"
)

// FuzzDifferential decodes bytes straight into a trace and replays it on
// the reference (locked) tree and the PNB-BST; any divergence fails.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 1, 10, 2, 10})
	f.Add([]byte{3, 0, 50, 0, 25, 0, 3, 0, 50})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var tr Trace
		for i := 0; i+2 < len(raw); i += 3 {
			op := Op{Kind: workload.OpKind(raw[i] % 4), Key: int64(raw[i+1])}
			if op.Kind == workload.OpScan {
				op.Hi = op.Key + int64(raw[i+2])
			}
			tr = append(tr, op)
		}
		if d := Diff(Replay(tr, bst.NewLocked()), Replay(tr, bst.New())); d != "" {
			t.Fatalf("divergence: %s\ntrace:\n%s", d, tr.String())
		}
	})
}

// FuzzParse checks the parser never panics and round-trips what it
// accepts.
func FuzzParse(f *testing.F) {
	f.Add("i 1\nd 2\nf 3\ns 4 10\n")
	f.Add("")
	f.Add("x yz")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := Parse(s)
		if err != nil {
			return
		}
		again, err := Parse(tr.String())
		if err != nil {
			t.Fatalf("re-parse of serialized trace failed: %v", err)
		}
		if len(again) != len(tr) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(tr))
		}
		for i := range tr {
			if tr[i] != again[i] {
				t.Fatalf("round trip changed op %d", i)
			}
		}
	})
}
