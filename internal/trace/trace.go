// Package trace provides deterministic operation traces for differential
// testing: the same recorded script is replayed against multiple set
// implementations and the results compared op-by-op. Because all five
// implementations in this repository claim identical sequential
// semantics, any divergence on a sequential replay is a bug in one of
// them; traces that trigger divergence can be serialized, minimized and
// replayed for debugging.
package trace

import (
	"fmt"
	"strconv"
	"strings"

	"repro/bst"
	"repro/internal/workload"
)

// Op is one operation of a trace. Hi is used by scans only.
type Op struct {
	Kind workload.OpKind
	Key  int64
	Hi   int64
}

// Trace is a replayable operation script.
type Trace []Op

// Generate produces a deterministic trace of n operations over
// [0, keyspace) drawn from mix (scan widths come from mix.ScanWidth).
func Generate(seed uint64, n int, keyspace int64, mix workload.Mix) Trace {
	mix.Validate()
	rng := workload.NewRNG(seed)
	t := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		kind := mix.Draw(rng)
		op := Op{Kind: kind, Key: rng.Intn(keyspace)}
		if kind == workload.OpScan {
			width := mix.ScanWidth
			if width <= 0 {
				width = 10
			}
			op.Hi = op.Key + width - 1
		}
		t = append(t, op)
	}
	return t
}

// Result captures everything observable from replaying a trace.
type Result struct {
	Rets  []bool    // return values of insert/delete/contains, in op order
	Scans [][]int64 // results of scans, in scan order
}

// Replay runs the trace sequentially against s.
func Replay(t Trace, s bst.Set) *Result {
	res := &Result{}
	for _, op := range t {
		switch op.Kind {
		case workload.OpInsert:
			res.Rets = append(res.Rets, s.Insert(op.Key))
		case workload.OpDelete:
			res.Rets = append(res.Rets, s.Delete(op.Key))
		case workload.OpFind:
			res.Rets = append(res.Rets, s.Contains(op.Key))
		case workload.OpScan:
			res.Scans = append(res.Scans, s.RangeScan(op.Key, op.Hi))
		}
	}
	return res
}

// Diff returns a description of the first divergence between two replay
// results, or "" if they are identical.
func Diff(a, b *Result) string {
	if len(a.Rets) != len(b.Rets) {
		return fmt.Sprintf("return-value counts differ: %d vs %d", len(a.Rets), len(b.Rets))
	}
	for i := range a.Rets {
		if a.Rets[i] != b.Rets[i] {
			return fmt.Sprintf("op %d returned %v vs %v", i, a.Rets[i], b.Rets[i])
		}
	}
	if len(a.Scans) != len(b.Scans) {
		return fmt.Sprintf("scan counts differ: %d vs %d", len(a.Scans), len(b.Scans))
	}
	for i := range a.Scans {
		if len(a.Scans[i]) != len(b.Scans[i]) {
			return fmt.Sprintf("scan %d lengths differ: %d vs %d", i, len(a.Scans[i]), len(b.Scans[i]))
		}
		for j := range a.Scans[i] {
			if a.Scans[i][j] != b.Scans[i][j] {
				return fmt.Sprintf("scan %d element %d: %d vs %d", i, j, a.Scans[i][j], b.Scans[i][j])
			}
		}
	}
	return ""
}

// Minimize shrinks a trace while check keeps failing (returns true =
// still fails). It deletes chunks, then single ops, until a local
// minimum; classic delta debugging, good enough for test triage.
func Minimize(t Trace, check func(Trace) bool) Trace {
	if !check(t) {
		return t
	}
	cur := append(Trace(nil), t...)
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(cur); {
			cand := append(append(Trace(nil), cur[:i]...), cur[i+chunk:]...)
			if check(cand) {
				cur = cand
			} else {
				i += chunk
			}
		}
	}
	return cur
}

// String serializes the trace in a compact one-op-per-line format:
// "i 5", "d 5", "f 5", "s 5 14".
func (t Trace) String() string {
	var sb strings.Builder
	for _, op := range t {
		switch op.Kind {
		case workload.OpInsert:
			fmt.Fprintf(&sb, "i %d\n", op.Key)
		case workload.OpDelete:
			fmt.Fprintf(&sb, "d %d\n", op.Key)
		case workload.OpFind:
			fmt.Fprintf(&sb, "f %d\n", op.Key)
		case workload.OpScan:
			fmt.Fprintf(&sb, "s %d %d\n", op.Key, op.Hi)
		}
	}
	return sb.String()
}

// Parse reads the String format back.
func Parse(s string) (Trace, error) {
	var t Trace
	for lineNo, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d malformed: %q", lineNo+1, line)
		}
		key, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d bad key: %v", lineNo+1, err)
		}
		op := Op{Key: key}
		switch fields[0] {
		case "i":
			op.Kind = workload.OpInsert
		case "d":
			op.Kind = workload.OpDelete
		case "f":
			op.Kind = workload.OpFind
		case "s":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d scan needs two keys", lineNo+1)
			}
			hi, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d bad hi: %v", lineNo+1, err)
			}
			op.Kind = workload.OpScan
			op.Hi = hi
		default:
			return nil, fmt.Errorf("trace: line %d unknown op %q", lineNo+1, fields[0])
		}
		t = append(t, op)
	}
	return t, nil
}
