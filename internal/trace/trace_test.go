package trace

import (
	"testing"
	"testing/quick"

	"repro/bst"
	"repro/internal/workload"
)

var mkSets = map[string]func() bst.Set{
	"pnbbst":        func() bst.Set { return bst.New() },
	"nbbst":         bst.NewNonBlockingBaseline,
	"locked":        bst.NewLocked,
	"skiplist":      bst.NewSkipList,
	"snapcollector": bst.NewSnapCollector,
}

func TestDifferentialAllImplementations(t *testing.T) {
	mix := workload.Mix{InsertPct: 35, DeletePct: 25, ScanPct: 10, ScanWidth: 16}
	for seed := uint64(0); seed < 10; seed++ {
		tr := Generate(seed, 2000, 128, mix)
		ref := Replay(tr, bst.NewLocked()) // trivially correct reference
		for name, mk := range mkSets {
			got := Replay(tr, mk())
			if d := Diff(ref, got); d != "" {
				t.Fatalf("seed %d: %s diverges from locked reference: %s", seed, name, d)
			}
		}
	}
}

func TestQuickDifferentialPNBvsLocked(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		mix := workload.Mix{InsertPct: 40, DeletePct: 30, ScanPct: 10, ScanWidth: 8}
		tr := Generate(seed, int(n%500)+10, 64, mix)
		return Diff(Replay(tr, bst.NewLocked()), Replay(tr, bst.New())) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	mix := workload.Mix{InsertPct: 50, DeletePct: 50}
	a := Generate(9, 100, 32, mix)
	b := Generate(9, 100, 32, mix)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	c := Generate(10, 100, 32, mix)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestDiffReportsDivergence(t *testing.T) {
	a := &Result{Rets: []bool{true, false}, Scans: [][]int64{{1, 2}}}
	b := &Result{Rets: []bool{true, true}, Scans: [][]int64{{1, 2}}}
	if Diff(a, b) == "" {
		t.Fatal("return divergence missed")
	}
	c := &Result{Rets: []bool{true, false}, Scans: [][]int64{{1, 3}}}
	if Diff(a, c) == "" {
		t.Fatal("scan divergence missed")
	}
	if Diff(a, a) != "" {
		t.Fatal("identical results flagged")
	}
	short := &Result{Rets: []bool{true}}
	if Diff(a, short) == "" {
		t.Fatal("length divergence missed")
	}
	d := &Result{Rets: []bool{true, false}, Scans: [][]int64{{1, 2}, {3}}}
	if Diff(a, d) == "" {
		t.Fatal("scan-count divergence missed")
	}
	e := &Result{Rets: []bool{true, false}, Scans: [][]int64{{1}}}
	if Diff(a, e) == "" {
		t.Fatal("scan-length divergence missed")
	}
}

func TestRoundTripStringParse(t *testing.T) {
	mix := workload.Mix{InsertPct: 30, DeletePct: 30, ScanPct: 20, ScanWidth: 5}
	tr := Generate(4, 200, 50, mix)
	parsed, err := Parse(tr.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(tr) {
		t.Fatalf("round trip length %d vs %d", len(parsed), len(tr))
	}
	for i := range tr {
		if parsed[i] != tr[i] {
			t.Fatalf("round trip op %d: %+v vs %+v", i, parsed[i], tr[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"x 1", "i", "i abc", "s 1", "s 1 z"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	if got, err := Parse("  \n\n"); err != nil || len(got) != 0 {
		t.Fatal("blank trace mishandled")
	}
}

func TestMinimizeShrinksFailingTrace(t *testing.T) {
	// Synthetic failure: any trace containing Insert(13) "fails".
	mix := workload.Mix{InsertPct: 100}
	tr := Generate(2, 500, 64, mix)
	contains13 := func(t Trace) bool {
		for _, op := range t {
			if op.Kind == workload.OpInsert && op.Key == 13 {
				return true
			}
		}
		return false
	}
	if !contains13(tr) {
		t.Skip("seed produced no Insert(13); adjust seed")
	}
	min := Minimize(tr, contains13)
	if len(min) != 1 || min[0].Key != 13 {
		t.Fatalf("Minimize left %d ops: %v", len(min), min)
	}
	// A passing trace is returned unchanged.
	ok := Trace{{Kind: workload.OpInsert, Key: 1}}
	if got := Minimize(ok, contains13); len(got) != 1 || got[0].Key != 1 {
		t.Fatal("Minimize mangled a passing trace")
	}
}

func TestMinimizeRealDivergenceWorkflow(t *testing.T) {
	// End-to-end triage flow on a healthy pair: no divergence found, so
	// the full trace survives minimization of the (never-failing) check.
	mix := workload.Mix{InsertPct: 40, DeletePct: 40, ScanPct: 10, ScanWidth: 4}
	tr := Generate(6, 300, 32, mix)
	diverges := func(t Trace) bool {
		return Diff(Replay(t, bst.NewLocked()), Replay(t, bst.New())) != ""
	}
	if diverges(tr) {
		min := Minimize(tr, diverges)
		t.Fatalf("implementations diverge; minimal reproducer:\n%s", min.String())
	}
}
