// Package repro is a Go reproduction of "Persistent Non-Blocking Binary
// Search Trees Supporting Wait-Free Range Queries" (Fatourou & Ruppert,
// SPAA 2019).
//
// Use the public API in repro/bst. The benchmark families in
// bench_test.go correspond one-to-one to the experiments in DESIGN.md §4
// (cmd/benchbst regenerates the full tables and figures; the benchmarks
// here measure single representative points with testing.B semantics).
package repro
