package bst_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/bst"
)

func TestMapBasics(t *testing.T) {
	m := bst.NewMap[string]()
	if m.Put(1, "one") {
		t.Fatal("first Put reported replace")
	}
	if !m.Put(1, "uno") {
		t.Fatal("second Put did not report replace")
	}
	if v, ok := m.Get(1); !ok || v != "uno" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if !m.Contains(1) || m.Contains(2) {
		t.Fatal("contains wrong")
	}
	m.Put(2, "two")
	m.Put(5, "five")
	es := m.Entries(1, 4)
	if len(es) != 2 || es[0].Val != "uno" || es[1].Val != "two" {
		t.Fatalf("Entries = %v", es)
	}
	if m.RangeCount(0, 10) != 3 || m.Len() != 3 {
		t.Fatal("counts wrong")
	}
	if got := m.Keys(); len(got) != 3 || got[2] != 5 {
		t.Fatalf("Keys = %v", got)
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Fatal("delete semantics")
	}
}

func TestMapSnapshotVersionedValues(t *testing.T) {
	m := bst.NewMap[int]()
	m.Put(7, 1)
	s1 := m.Snapshot()
	m.Put(7, 2)
	s2 := m.Snapshot()
	m.Delete(7)

	if v, ok := s1.Get(7); !ok || v != 1 {
		t.Fatalf("s1.Get = %d,%v", v, ok)
	}
	if v, ok := s2.Get(7); !ok || v != 2 {
		t.Fatalf("s2.Get = %d,%v", v, ok)
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("live map still has 7")
	}
	if s1.Len() != 1 || s2.Len() != 1 || m.Len() != 0 {
		t.Fatal("lens wrong")
	}
	if s1.Seq() >= s2.Seq() {
		t.Fatal("snapshot phases not increasing")
	}
	n := 0
	s2.Range(0, 100, func(k int64, v int) bool {
		if k != 7 || v != 2 {
			t.Fatalf("s2 entry %d=%d", k, v)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("s2.Range visited %d", n)
	}
}

func TestMapEntriesFuncEarlyStop(t *testing.T) {
	m := bst.NewMap[int64]()
	for i := int64(0); i < 50; i++ {
		m.Put(i, i*i)
	}
	n := 0
	m.EntriesFunc(0, 49, func(k, v int64) bool {
		if v != k*k {
			t.Fatalf("entry %d=%d", k, v)
		}
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d", n)
	}
}

func TestMapConcurrentCounters(t *testing.T) {
	// Each worker owns a key and monotonically increments its value via
	// Put-replace; concurrent readers must never see a value decrease.
	m := bst.NewMap[int64]()
	const workers = 4
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < workers; w++ {
		m.Put(int64(w), 0)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			for v := int64(1); !stop.Load(); v++ {
				m.Put(k, v)
			}
		}(int64(w))
	}
	last := make([]int64, workers)
	for i := 0; i < 20000; i++ {
		k := int64(i % workers)
		if v, ok := m.Get(k); ok {
			if v < last[k] {
				t.Fatalf("key %d went backwards: %d then %d", k, last[k], v)
			}
			last[k] = v
		}
	}
	stop.Store(true)
	wg.Wait()
}
