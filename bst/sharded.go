package bst

import (
	"time"

	"repro/internal/shard"
)

// ShardedMap is a keyspace-sharded ordered map of int64 keys: P
// independent PNB-BSTs behind fixed range boundaries, the first
// scale-out layer over the paper's single tree (DESIGN.md §5). Like the
// paper's Tree it stores keys only (it implements Set); a sharded
// counterpart of the value-carrying Map[V] is a planned step on the
// same sharding axis.
//
// Point operations (Insert, Delete, Contains) route to the shard owning
// the key and keep the PNB-BST's guarantees unchanged — linearizable and
// non-blocking — because two operations on the same key always meet in
// the same tree. Sharding removes the single tree's shared phase counter
// and root from the path of unrelated keys, so disjoint-key workloads
// scale with P.
//
// RangeScan and Snapshot are wait-free and — by default — LINEARIZABLE
// across shards: all P trees share one phase clock, so a multi-shard
// scan or snapshot opens a single phase and takes every shard's
// wait-free cut at that same phase, one atomic cut of the whole map,
// linearized at the clock increment exactly like the paper's single-tree
// scan (DESIGN.md §5.2). The per-shard results concatenate in key order
// (shards hold disjoint ordered ranges), so no merging is needed.
//
// The RelaxedScans option restores fully independent per-shard phase
// clocks: scans in one shard then never handshake with updates in
// another, but a multi-shard scan degrades to a stitch of per-shard cuts
// taken at successive instants — serializable, not linearizable.
// Experiment E13 measures what the default atomicity costs against this
// relaxed mode.
//
// ShardedMap implements Set. All methods are safe for concurrent use.
type ShardedMap struct {
	s *shard.Set
}

// ShardedOption configures a ShardedMap at construction.
type ShardedOption = shard.Option

// RelaxedScans opts a ShardedMap out of the shared phase clock: each
// shard keeps a private clock, multi-shard scans and snapshots become
// stitches of per-shard atomic cuts taken at successive instants
// (serializable, not linearizable — see the type comment), and in
// exchange scans never force handshake aborts outside their own shard.
func RelaxedScans() ShardedOption { return shard.WithRelaxedScans() }

// ShardedSnapshot is a frozen composite of per-shard snapshots; see
// (*ShardedMap).Snapshot.
type ShardedSnapshot = shard.Snapshot

// RebalanceConfig tunes the online shard rebalancer; the zero value gets
// the documented defaults. See shard.RebalanceConfig.
type RebalanceConfig = shard.RebalanceConfig

// Rebalancing errors, re-exported for errors.Is.
var (
	// ErrRelaxedRebalance: rebalancing needs the shared phase clock, which
	// RelaxedScans removes.
	ErrRelaxedRebalance = shard.ErrRelaxedRebalance
	// ErrSplitTooSmall: the shard holds fewer than two keys.
	ErrSplitTooSmall = shard.ErrSplitTooSmall
)

// NewSharded returns an empty map of p shards whose boundaries split the
// full key space [MinKey, MaxKey] evenly.
func NewSharded(p int, opts ...ShardedOption) *ShardedMap {
	return &ShardedMap{s: shard.New(p, opts...)}
}

// NewShardedRange returns an empty map of p shards whose boundaries
// split [lo, hi] evenly; the edge shards absorb the rest of the key
// space. Use this when the workload concentrates on a known interval so
// that all p shards share its load.
func NewShardedRange(lo, hi int64, p int, opts ...ShardedOption) *ShardedMap {
	return &ShardedMap{s: shard.NewRange(lo, hi, p, opts...)}
}

// Shards returns the current shard count; it changes over time on a map
// with an active rebalancer.
func (m *ShardedMap) Shards() int { return m.s.Shards() }

// Split divides shard i in two at the median key of its contents,
// atomically at one phase of the shared clock: no operation — not even
// a scan already in flight across the boundary — can observe a torn
// state (DESIGN.md §7). Fails with ErrSplitTooSmall on shards holding
// fewer than two keys and ErrRelaxedRebalance on RelaxedScans maps.
func (m *ShardedMap) Split(i int) error { return m.s.Split(i) }

// Merge fuses shards i and i+1 into one, with Split's atomicity.
func (m *ShardedMap) Merge(i int) error { return m.s.Merge(i) }

// StartAutoRebalance runs a load-driven rebalancer on a background
// goroutine: every cfg.Interval it samples per-shard load and splits the
// hottest shard or merges the coldest adjacent pair when the imbalance
// crosses cfg's thresholds. It returns a stop function (idempotent;
// returns after the rebalancer has fully quiesced) and fails with
// ErrRelaxedRebalance on RelaxedScans maps.
func (m *ShardedMap) StartAutoRebalance(cfg RebalanceConfig) (stop func(), err error) {
	return m.s.AutoRebalance(cfg)
}

// Migrations reports how many shard splits and merges have completed.
func (m *ShardedMap) Migrations() (splits, merges uint64) { return m.s.Migrations() }

// ShardLoads returns the cumulative per-shard point-operation counts of
// the current routing generation (they restart at zero on each
// migration) — the signal the rebalancer acts on.
func (m *ShardedMap) ShardLoads() []uint64 { return m.s.ShardLoads() }

// ShardInfo is one shard's introspection row (bounds, load, per-tree
// contention and reclamation gauges). See shard.ShardInfo.
type ShardInfo = shard.ShardInfo

// ShardInfos returns one introspection row per current shard, all read
// from a single routing-table snapshot. The metrics endpoint serves
// these as per-shard Prometheus gauges.
func (m *ShardedMap) ShardInfos() []ShardInfo { return m.s.ShardInfos() }

// ClockNow returns the current phase of the shared clock (false for a
// relaxed map, which has no shared clock).
func (m *ShardedMap) ClockNow() (uint64, bool) { return m.s.ClockNow() }

// Relaxed reports whether the map was built with RelaxedScans.
func (m *ShardedMap) Relaxed() bool { return m.s.Relaxed() }

// ShardOf returns the index of the shard owning key k.
func (m *ShardedMap) ShardOf(k int64) int { return m.s.Router().Of(k) }

// ShardBounds returns the inclusive key range owned by shard i.
func (m *ShardedMap) ShardBounds(i int) (lo, hi int64) { return m.s.Router().Bounds(i) }

// Insert adds k, reporting whether it was absent. Non-blocking.
func (m *ShardedMap) Insert(k int64) bool { return m.s.Insert(k) }

// Delete removes k, reporting whether it was present. Non-blocking.
func (m *ShardedMap) Delete(k int64) bool { return m.s.Delete(k) }

// Contains reports whether k is present. Non-blocking.
func (m *ShardedMap) Contains(k int64) bool { return m.s.Find(k) }

// InsertPhase is Insert that additionally reports the phase the operation
// committed at on the shared clock. Phases order updates against
// checkpoint cuts, which is what the durability layer's WAL stamps
// records with (internal/persist). On RelaxedScans maps the phase belongs
// to the owning shard's private clock and is not comparable across
// shards — such maps cannot be persisted.
func (m *ShardedMap) InsertPhase(k int64) (res bool, phase uint64) { return m.s.InsertPhase(k) }

// DeletePhase is Delete reporting the commit phase; see InsertPhase.
func (m *ShardedMap) DeletePhase(k int64) (res bool, phase uint64) { return m.s.DeletePhase(k) }

// AdvanceClock raises the shared phase clock to at least p, reporting
// whether the map has one (false on RelaxedScans maps). Durability
// recovery calls this before serving so that post-recovery commit phases
// exceed every phase the previous process persisted.
func (m *ShardedMap) AdvanceClock(p uint64) bool { return m.s.AdvanceClock(p) }

// RangeScan returns the keys in [a, b], ascending. Wait-free and, by
// default, one atomic cut across all covered shards (see the type
// comment).
func (m *ShardedMap) RangeScan(a, b int64) []int64 { return m.s.RangeScan(a, b) }

// RangeScanFunc streams the keys in [a, b] in ascending order to visit
// without allocating; visit returning false stops early (including
// across shard boundaries). Wait-free.
func (m *ShardedMap) RangeScanFunc(a, b int64, visit func(k int64) bool) {
	m.s.RangeScanFunc(a, b, visit)
}

// RangeCount returns the number of keys in [a, b] without allocating.
func (m *ShardedMap) RangeCount(a, b int64) int { return m.s.RangeCount(a, b) }

// Keys returns all keys, ascending.
func (m *ShardedMap) Keys() []int64 { return m.s.Keys() }

// Len returns the number of keys.
func (m *ShardedMap) Len() int { return m.s.Len() }

// Min returns the smallest key, if any.
func (m *ShardedMap) Min() (int64, bool) { return m.s.Min() }

// Max returns the largest key, if any.
func (m *ShardedMap) Max() (int64, bool) { return m.s.Max() }

// Succ returns the smallest key >= k, if any (crossing shard boundaries
// as needed).
func (m *ShardedMap) Succ(k int64) (int64, bool) { return m.s.Succ(k) }

// Pred returns the largest key <= k, if any.
func (m *ShardedMap) Pred(k int64) (int64, bool) { return m.s.Pred(k) }

// Snapshot returns a frozen composite view of all shards. By default
// (shared clock) the composite is ONE atomic cut: every shard's
// wait-free snapshot captures the same phase. Reads of the result are
// stable and wait-free; call Release when done reading (reading after
// Release is a bug, detected at the call site). See the type comment
// for the RelaxedScans semantics.
func (m *ShardedMap) Snapshot() *ShardedSnapshot { return m.s.Snapshot() }

// Compact prunes every shard's version memory to that shard's own
// reclamation horizon (horizons stay per-shard even under the shared
// clock: a composite Snapshot or in-flight cross-shard scan registers on
// every shard it covers before opening its phase, pinning each horizon
// separately — DESIGN.md §6). LiveNodes and PrunedLinks are summed over
// shards. Safe concurrently with any mix of operations.
func (m *ShardedMap) Compact() CompactStats { return m.s.Compact() }

// StartAutoCompact runs Compact every interval on a background goroutine
// until the returned stop function is called; see (*Tree).StartAutoCompact.
func (m *ShardedMap) StartAutoCompact(interval time.Duration) (stop func()) {
	return autoCompact(interval, func() { m.Compact() })
}

// VersionGraphSize walks every shard's version lists and returns the
// total reachable version-record count — the memory Compact exists to
// bound. Diagnostic; O(total versions) and quiescent-use only, like
// CheckInvariants.
func (m *ShardedMap) VersionGraphSize() int { return m.s.VersionGraphSize() }

// Stats returns the element-wise sum of per-shard instrumentation
// counters, except Scans, which counts logical phase-opening reads on
// the map (a scan covering P shards counts once, not P times).
func (m *ShardedMap) Stats() Stats { return m.s.Stats() }

// ResetStats zeroes every shard's counters.
func (m *ShardedMap) ResetStats() { m.s.ResetStats() }

// CheckInvariants validates per-shard structure and key ownership;
// quiescent use only.
func (m *ShardedMap) CheckInvariants() error { return m.s.CheckInvariants() }

var _ Set = (*ShardedMap)(nil)
