package bst

import (
	"time"

	"repro/internal/shard"
)

// ShardedMap is a keyspace-sharded ordered map of int64 keys: P
// independent PNB-BSTs behind fixed range boundaries, the first
// scale-out layer over the paper's single tree (DESIGN.md §5). Like the
// paper's Tree it stores keys only (it implements Set); a sharded
// counterpart of the value-carrying Map[V] is a planned step on the
// same sharding axis.
//
// Point operations (Insert, Delete, Contains) route to the shard owning
// the key and keep the PNB-BST's guarantees unchanged — linearizable and
// non-blocking — because two operations on the same key always meet in
// the same tree. Sharding removes the single tree's shared phase counter
// and root from the path of unrelated keys, so disjoint-key workloads
// scale with P.
//
// RangeScan and Snapshot stitch per-shard wait-free scans together in
// ascending key order. Within one shard the result is an atomic cut;
// across shards the cuts are taken at successive instants, so a
// multi-shard scan is serializable but not linearizable (each key is
// read exactly once, from a per-shard linearization point; see DESIGN.md
// §5.2 for the precise statement and an example). Scans confined to a
// single shard remain fully linearizable.
//
// ShardedMap implements Set. All methods are safe for concurrent use.
type ShardedMap struct {
	s *shard.Set
}

// ShardedSnapshot is a frozen composite of per-shard snapshots; see
// (*ShardedMap).Snapshot.
type ShardedSnapshot = shard.Snapshot

// NewSharded returns an empty map of p shards whose boundaries split the
// full key space [MinKey, MaxKey] evenly.
func NewSharded(p int) *ShardedMap {
	return &ShardedMap{s: shard.New(p)}
}

// NewShardedRange returns an empty map of p shards whose boundaries
// split [lo, hi] evenly; the edge shards absorb the rest of the key
// space. Use this when the workload concentrates on a known interval so
// that all p shards share its load.
func NewShardedRange(lo, hi int64, p int) *ShardedMap {
	return &ShardedMap{s: shard.NewRange(lo, hi, p)}
}

// Shards returns the shard count P.
func (m *ShardedMap) Shards() int { return m.s.Shards() }

// ShardOf returns the index of the shard owning key k.
func (m *ShardedMap) ShardOf(k int64) int { return m.s.Router().Of(k) }

// ShardBounds returns the inclusive key range owned by shard i.
func (m *ShardedMap) ShardBounds(i int) (lo, hi int64) { return m.s.Router().Bounds(i) }

// Insert adds k, reporting whether it was absent. Non-blocking.
func (m *ShardedMap) Insert(k int64) bool { return m.s.Insert(k) }

// Delete removes k, reporting whether it was present. Non-blocking.
func (m *ShardedMap) Delete(k int64) bool { return m.s.Delete(k) }

// Contains reports whether k is present. Non-blocking.
func (m *ShardedMap) Contains(k int64) bool { return m.s.Find(k) }

// RangeScan returns the keys in [a, b], ascending. Wait-free; atomic per
// shard, stitched across shards (see the type comment).
func (m *ShardedMap) RangeScan(a, b int64) []int64 { return m.s.RangeScan(a, b) }

// RangeScanFunc streams the keys in [a, b] in ascending order to visit
// without allocating; visit returning false stops early (including
// across shard boundaries). Wait-free.
func (m *ShardedMap) RangeScanFunc(a, b int64, visit func(k int64) bool) {
	m.s.RangeScanFunc(a, b, visit)
}

// RangeCount returns the number of keys in [a, b] without allocating.
func (m *ShardedMap) RangeCount(a, b int64) int { return m.s.RangeCount(a, b) }

// Keys returns all keys, ascending.
func (m *ShardedMap) Keys() []int64 { return m.s.Keys() }

// Len returns the number of keys.
func (m *ShardedMap) Len() int { return m.s.Len() }

// Min returns the smallest key, if any.
func (m *ShardedMap) Min() (int64, bool) { return m.s.Min() }

// Max returns the largest key, if any.
func (m *ShardedMap) Max() (int64, bool) { return m.s.Max() }

// Succ returns the smallest key >= k, if any (crossing shard boundaries
// as needed).
func (m *ShardedMap) Succ(k int64) (int64, bool) { return m.s.Succ(k) }

// Pred returns the largest key <= k, if any.
func (m *ShardedMap) Pred(k int64) (int64, bool) { return m.s.Pred(k) }

// Snapshot returns a frozen composite view: each shard's wait-free
// snapshot, taken in ascending shard order. Reads of the result are
// stable (every read observes the same composite) and wait-free, but the
// composite is not one atomic cut of the whole map — see the type
// comment and DESIGN.md §5.2.
func (m *ShardedMap) Snapshot() *ShardedSnapshot { return m.s.Snapshot() }

// Compact prunes every shard's version memory to that shard's own
// reclamation horizon (each shard has an independent phase counter; a
// composite Snapshot pins each covered shard's horizon separately, so
// per-shard pruning needs no cross-shard coordination — DESIGN.md §6).
// LiveNodes and PrunedLinks are summed over shards. Safe concurrently
// with any mix of operations.
func (m *ShardedMap) Compact() CompactStats { return m.s.Compact() }

// StartAutoCompact runs Compact every interval on a background goroutine
// until the returned stop function is called; see (*Tree).StartAutoCompact.
func (m *ShardedMap) StartAutoCompact(interval time.Duration) (stop func()) {
	return autoCompact(interval, func() { m.Compact() })
}

// Stats returns the element-wise sum of per-shard instrumentation
// counters.
func (m *ShardedMap) Stats() Stats { return m.s.Stats() }

// ResetStats zeroes every shard's counters.
func (m *ShardedMap) ResetStats() { m.s.ResetStats() }

// CheckInvariants validates per-shard structure and key ownership;
// quiescent use only.
func (m *ShardedMap) CheckInvariants() error { return m.s.CheckInvariants() }

var _ Set = (*ShardedMap)(nil)
