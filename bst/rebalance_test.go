package bst_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/bst"
	"repro/internal/workload"
)

// TestShardedSplitMerge exercises the public rebalancing surface:
// explicit Split/Merge preserve contents and scan results, report
// through Migrations/ShardLoads, and reject misuse with the exported
// errors.
func TestShardedSplitMerge(t *testing.T) {
	m := bst.NewShardedRange(0, 1<<12-1, 2)
	var want []int64
	for k := int64(0); k < 1<<12; k += 5 {
		m.Insert(k)
		want = append(want, k)
	}
	if err := m.Split(0); err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 3 {
		t.Fatalf("Shards() = %d after Split, want 3", m.Shards())
	}
	got := m.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %d keys after Split, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if err := m.Merge(0); err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 2 {
		t.Fatalf("Shards() = %d after Merge, want 2", m.Shards())
	}
	if splits, merges := m.Migrations(); splits != 1 || merges != 1 {
		t.Fatalf("Migrations() = %d, %d, want 1, 1", splits, merges)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if loads := m.ShardLoads(); len(loads) != 2 {
		t.Fatalf("ShardLoads() has %d entries, want 2", len(loads))
	}

	empty := bst.NewSharded(2)
	if err := empty.Split(0); !errors.Is(err, bst.ErrSplitTooSmall) {
		t.Fatalf("Split of an empty shard: %v, want ErrSplitTooSmall", err)
	}
	relaxed := bst.NewSharded(2, bst.RelaxedScans())
	if err := relaxed.Split(0); !errors.Is(err, bst.ErrRelaxedRebalance) {
		t.Fatalf("Split of a relaxed map: %v, want ErrRelaxedRebalance", err)
	}
	if _, err := relaxed.StartAutoRebalance(bst.RebalanceConfig{}); !errors.Is(err, bst.ErrRelaxedRebalance) {
		t.Fatalf("StartAutoRebalance on a relaxed map: %v, want ErrRelaxedRebalance", err)
	}
}

// TestShardedAutoRebalance runs the background rebalancer against a
// spatially skewed workload through the public map: shards must grow at
// the hot range while concurrent snapshots stay stable, and the map must
// end structurally valid with the Set semantics intact.
func TestShardedAutoRebalance(t *testing.T) {
	const keys = 1 << 15
	m := bst.NewShardedRange(0, keys-1, 2)
	for k := int64(0); k < keys; k += 4 {
		m.Insert(k)
	}
	stop, err := m.StartAutoRebalance(bst.RebalanceConfig{Interval: 2 * time.Millisecond, MaxShards: 16})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 7)
			z := workload.NewZipfClustered(0, keys, 1.3)
			for !done.Load() {
				k := z.Key(rng)
				switch rng.Intn(3) {
				case 0:
					m.Insert(k)
				case 1:
					m.Delete(k)
				default:
					m.Contains(k)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			snap := m.Snapshot()
			if a, b := snap.Len(), snap.Len(); a != b {
				t.Errorf("snapshot unstable during rebalancing: %d then %d", a, b)
			}
			if _, ok := snap.Seq(); !ok {
				t.Error("composite snapshot lost its shared phase during rebalancing")
			}
			snap.Release()
		}
	}()
	time.Sleep(250 * time.Millisecond)
	done.Store(true)
	wg.Wait()
	stop()
	if m.Shards() <= 2 {
		t.Fatalf("rebalancer never split under skew: %d shards", m.Shards())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
