package bst_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/bst"
	"repro/internal/seqset"
)

// allSets enumerates every implementation behind the Set interface.
// The *Tree is wrapped so the test also exercises the facade methods.
func allSets() map[string]func() bst.Set {
	return map[string]func() bst.Set{
		"pnbbst":        func() bst.Set { return bst.New() },
		"nbbst":         bst.NewNonBlockingBaseline,
		"locked":        bst.NewLocked,
		"skiplist":      bst.NewSkipList,
		"snapcollector": bst.NewSnapCollector,
	}
}

func TestAllImplementationsAgainstOracle(t *testing.T) {
	for name, mk := range allSets() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			oracle := seqset.New()
			rng := rand.New(rand.NewSource(77))
			for i := 0; i < 8000; i++ {
				k := int64(rng.Intn(250)) + 1
				switch rng.Intn(4) {
				case 0:
					if s.Insert(k) != oracle.Insert(k) {
						t.Fatalf("Insert(%d) diverged at step %d", k, i)
					}
				case 1:
					if s.Delete(k) != oracle.Delete(k) {
						t.Fatalf("Delete(%d) diverged at step %d", k, i)
					}
				case 2:
					if s.Contains(k) != oracle.Contains(k) {
						t.Fatalf("Contains(%d) diverged at step %d", k, i)
					}
				case 3:
					got := s.RangeScan(k, k+40)
					want := oracle.RangeScan(k, k+40)
					if len(got) != len(want) {
						t.Fatalf("RangeScan(%d,%d) len %d, want %d", k, k+40, len(got), len(want))
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("RangeScan mismatch at %d", j)
						}
					}
				}
			}
			if s.Len() != oracle.Len() {
				t.Fatalf("Len = %d, want %d", s.Len(), oracle.Len())
			}
		})
	}
}

func TestTreeFacadeExtras(t *testing.T) {
	tr := bst.New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(i)
	}
	if got := tr.RangeCount(10, 19); got != 10 {
		t.Fatalf("RangeCount = %d", got)
	}
	var first []int64
	tr.RangeScanFunc(0, 99, func(k int64) bool {
		first = append(first, k)
		return len(first) < 3
	})
	if len(first) != 3 || first[0] != 0 || first[2] != 2 {
		t.Fatalf("RangeScanFunc early stop = %v", first)
	}
	if got := tr.Keys(); len(got) != 100 {
		t.Fatalf("Keys len = %d", len(got))
	}
	snap := tr.Snapshot()
	tr.Delete(5)
	if !snap.Contains(5) || tr.Contains(5) {
		t.Fatal("snapshot/live divergence wrong")
	}
	if snap.Len() != 100 || tr.Len() != 99 {
		t.Fatalf("lens: snap %d live %d", snap.Len(), tr.Len())
	}
	st := tr.Stats()
	if st.Scans == 0 {
		t.Fatal("stats did not count the snapshot")
	}
	tr.ResetStats()
	if tr.Stats().Scans != 0 {
		t.Fatal("ResetStats did not clear")
	}
	// Ordered queries through the facade (5 was deleted above).
	if g, ok := tr.Min(); !ok || g != 0 {
		t.Fatalf("Min = %d,%v", g, ok)
	}
	if g, ok := tr.Max(); !ok || g != 99 {
		t.Fatalf("Max = %d,%v", g, ok)
	}
	if g, ok := tr.Succ(5); !ok || g != 6 {
		t.Fatalf("Succ(5) = %d,%v", g, ok)
	}
	if g, ok := tr.Pred(5); !ok || g != 4 {
		t.Fatalf("Pred(5) = %d,%v", g, ok)
	}
}

func TestConcurrentThroughInterface(t *testing.T) {
	for name, mk := range allSets() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 2000; i++ {
						k := int64(rng.Intn(100)) + 1
						switch rng.Intn(3) {
						case 0:
							s.Insert(k)
						case 1:
							s.Delete(k)
						case 2:
							s.Contains(k)
						}
					}
				}(w)
			}
			wg.Wait()
			// Sanity at quiescence: Len agrees with a full scan.
			if got, scan := s.Len(), s.RangeScan(bst.MinKey+1, bst.MaxKey); got != len(scan) {
				t.Fatalf("Len %d != scan %d", got, len(scan))
			}
		})
	}
}

func TestMaxKeyRoundTripAllSets(t *testing.T) {
	for name, mk := range allSets() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if !s.Insert(bst.MaxKey) || !s.Contains(bst.MaxKey) || !s.Delete(bst.MaxKey) {
				t.Fatal("MaxKey roundtrip failed")
			}
		})
	}
}
