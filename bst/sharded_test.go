package bst_test

import (
	"sync"
	"testing"
	"time"

	"repro/bst"
	"repro/internal/lincheck"
	"repro/internal/workload"
)

// TestShardedMatchesSingleTree drives identical sequential op streams
// through a ShardedMap (several shard counts) and a single Tree and
// requires identical results, including multi-shard range scans — the
// acceptance check for the sharded layer.
func TestShardedMatchesSingleTree(t *testing.T) {
	const keys = 1 << 12
	for _, shards := range []int{1, 4, 16} {
		m := bst.NewShardedRange(0, keys-1, shards)
		single := bst.New()
		rng := workload.NewRNG(uint64(shards))
		for op := 0; op < 30000; op++ {
			k := rng.Intn(keys)
			switch rng.Intn(5) {
			case 0, 1:
				if got, want := m.Insert(k), single.Insert(k); got != want {
					t.Fatalf("shards=%d op=%d: Insert(%d) = %v, want %v", shards, op, k, got, want)
				}
			case 2:
				if got, want := m.Delete(k), single.Delete(k); got != want {
					t.Fatalf("shards=%d op=%d: Delete(%d) = %v, want %v", shards, op, k, got, want)
				}
			case 3:
				if got, want := m.Contains(k), single.Contains(k); got != want {
					t.Fatalf("shards=%d op=%d: Contains(%d) = %v, want %v", shards, op, k, got, want)
				}
			default:
				a := rng.Intn(keys)
				b := a + rng.Intn(keys/2)
				got, want := m.RangeScan(a, b), single.RangeScan(a, b)
				if len(got) != len(want) {
					t.Fatalf("shards=%d: RangeScan(%d,%d) sizes %d vs %d", shards, a, b, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("shards=%d: RangeScan(%d,%d)[%d] = %d, want %d", shards, a, b, i, got[i], want[i])
					}
				}
			}
		}
		if m.Len() != single.Len() {
			t.Fatalf("shards=%d: Len %d vs %d", shards, m.Len(), single.Len())
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

// TestShardedBoundaries pins the shard metadata accessors and boundary
// routing: boundary keys belong to exactly one shard, bounds tile the
// key space, and scans that start or end exactly on a boundary are
// correct.
func TestShardedBoundaries(t *testing.T) {
	m := bst.NewShardedRange(0, 1023, 4)
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d", m.Shards())
	}
	for i := 0; i < 4; i++ {
		lo, hi := m.ShardBounds(i)
		if m.ShardOf(lo) != i || m.ShardOf(hi) != i {
			t.Fatalf("bounds of shard %d [%d,%d] do not route home", i, lo, hi)
		}
	}
	// 256 is the first key of shard 1; 255 the last of shard 0.
	if m.ShardOf(255) == m.ShardOf(256) {
		t.Fatal("boundary keys 255/256 in same shard")
	}
	m.Insert(255)
	m.Insert(256)
	if got := m.RangeScan(255, 256); len(got) != 2 || got[0] != 255 || got[1] != 256 {
		t.Fatalf("boundary-straddling scan = %v", got)
	}
	if got := m.RangeScan(256, 256); len(got) != 1 || got[0] != 256 {
		t.Fatalf("boundary-start scan = %v", got)
	}
	if got := m.RangeScan(0, 255); len(got) != 1 || got[0] != 255 {
		t.Fatalf("boundary-end scan = %v", got)
	}
}

// TestShardedFullKeyspace exercises NewSharded (no focus range) with
// negative and positive keys, and MinKey/MaxKey extremes.
func TestShardedFullKeyspace(t *testing.T) {
	m := bst.NewSharded(8)
	keys := []int64{bst.MinKey, -1 << 40, -7, 0, 7, 1 << 40, bst.MaxKey}
	for _, k := range keys {
		if !m.Insert(k) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}
	got := m.RangeScan(bst.MinKey, bst.MaxKey)
	if len(got) != len(keys) {
		t.Fatalf("full scan = %v", got)
	}
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("full scan[%d] = %d, want %d", i, got[i], k)
		}
	}
	if k, ok := m.Min(); !ok || k != bst.MinKey {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	if k, ok := m.Max(); !ok || k != bst.MaxKey {
		t.Fatalf("Max = %d,%v", k, ok)
	}
	if k, ok := m.Succ(8); !ok || k != 1<<40 {
		t.Fatalf("Succ(8) = %d,%v", k, ok)
	}
	if k, ok := m.Pred(6); !ok || k != 0 {
		t.Fatalf("Pred(6) = %d,%v", k, ok)
	}
}

// TestShardedSnapshotStability takes a composite snapshot under a
// concurrent update storm and requires every re-read to observe the
// identical composite.
func TestShardedSnapshotStability(t *testing.T) {
	const keyRange = 1 << 10
	m := bst.NewShardedRange(0, keyRange-1, 4)
	rng := workload.NewRNG(3)
	for i := 0; i < keyRange/2; i++ {
		m.Insert(rng.Intn(keyRange))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(w) + 100)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Intn(keyRange)
				if r.Intn(2) == 0 {
					m.Insert(k)
				} else {
					m.Delete(k)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := m.Snapshot()
		first := snap.Keys()
		second := snap.Keys()
		if len(first) != len(second) {
			t.Fatalf("snapshot unstable: %d then %d keys", len(first), len(second))
		}
		for j := range first {
			if first[j] != second[j] {
				t.Fatalf("snapshot unstable at index %d: %d then %d", j, first[j], second[j])
			}
		}
		if snap.Len() != len(first) {
			t.Fatalf("snapshot Len %d != Keys len %d", snap.Len(), len(first))
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedLinearizable records concurrent Insert/Delete/Contains
// histories against a ShardedMap and runs the lincheck checker over
// them: point operations must stay linearizable across the sharded
// front end, including on keys adjacent to shard boundaries.
func TestShardedLinearizable(t *testing.T) {
	const (
		workers = 8
		rounds  = 40
	)
	// Tiny key set clustered on the shard boundaries of a 4-shard router
	// over [0, 1024): 256 and 512 are first keys of shards 1 and 2.
	hotKeys := []int64{255, 256, 511, 512, 513}
	for round := 0; round < rounds; round++ {
		m := bst.NewShardedRange(0, 1023, 4)
		histories := make([][]lincheck.Event, workers)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := workload.NewRNG(uint64(round*workers + w))
				<-start
				for i := 0; i < 6; i++ { // ≤ 48 ops/key in total, under lincheck's 64 cap
					k := hotKeys[rng.Intn(int64(len(hotKeys)))]
					kind := lincheck.OpKind(rng.Intn(3))
					inv := time.Now().UnixNano()
					var ret bool
					switch kind {
					case lincheck.Insert:
						ret = m.Insert(k)
					case lincheck.Delete:
						ret = m.Delete(k)
					default:
						ret = m.Contains(k)
					}
					histories[w] = append(histories[w], lincheck.Event{
						Kind: kind, Key: k, Ret: ret,
						Inv: inv, Res: time.Now().UnixNano(),
					})
				}
			}(w)
		}
		close(start)
		wg.Wait()
		var all []lincheck.Event
		for _, h := range histories {
			all = append(all, h...)
		}
		if err := lincheck.Check(all); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
