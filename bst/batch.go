package bst

import "repro/internal/core"

// BatchKind selects what a BatchOp does; see the BatchOp constants.
type BatchKind = core.BatchKind

// Batch operation kinds.
const (
	BatchInsert   = core.BatchInsert
	BatchDelete   = core.BatchDelete
	BatchContains = core.BatchContains
)

// BatchOp is one point operation of a batch: a kind plus its key.
type BatchOp = core.BatchOp

// ApplyBatch applies a vector of point operations in slice order, writing
// each op's result (Insert: key was absent; Delete: key was present;
// Contains: key is present) into res, which must be at least len(ops)
// long.
//
// Batching amortizes the per-op fixed costs (pin-stripe acquisition and
// phase-clock read) over the whole vector. Semantics match a loop of the
// single-op calls, not a transaction: each op is individually
// linearizable inside the ApplyBatch call, a later op observes an
// earlier op's effect (read-your-writes within the batch), and the batch
// as a whole is NOT atomic — concurrent operations and scans can
// interleave between any two of its ops. See DESIGN.md §11.
func (t *Tree) ApplyBatch(ops []BatchOp, res []bool) { t.t.ApplyOps(ops, res) }

// ApplyBatch applies a vector of point operations with (*Tree).ApplyBatch
// semantics — per-op linearizable, in slice order, NOT atomic — plus
// shard-level amortization: the routing table is resolved once for the
// whole vector and ops are grouped by destination shard. Groups landing
// on a shard sealed by a concurrent Split/Merge re-route through the
// replacement table, exactly like single ops. See DESIGN.md §11.
func (m *ShardedMap) ApplyBatch(ops []BatchOp, res []bool) { m.s.ApplyBatch(ops, res) }

// ApplyBatchPhases is ApplyBatch that additionally records each op's
// commit phase into phases (ignored when nil, else at least len(ops)
// long); see (*ShardedMap).InsertPhase for what the phase means.
func (m *ShardedMap) ApplyBatchPhases(ops []BatchOp, res []bool, phases []uint64) {
	m.s.ApplyBatchPhases(ops, res, phases)
}

// BulkLoad ingests a strictly ascending key sequence through the
// migration machinery instead of per-key Inserts: one atomic cut of
// every shard, each shard's frozen contents merged with its slice of the
// keys, and balanced CAS-free replacement trees installed under a single
// routing-table swap. It returns how many keys were newly added (keys
// already present count toward neither side, like a false Insert) and
// fails — without modifying the map — on out-of-range or non-ascending
// input.
//
// Readers stay wait-free throughout and concurrent updates re-route,
// exactly as during a Split or Merge; the load serializes with
// migrations. On RelaxedScans maps (no shared clock, so no migration
// cut) it degrades to an Insert loop with the same result.
func (m *ShardedMap) BulkLoad(keys []int64) (added int, err error) { return m.s.BulkLoad(keys) }

// BulkLoadPhase is BulkLoad that additionally reports the migration cut
// phase the load was linearized at: reads at phases > cut observe every
// loaded key. Durability logs a bulk load as one WAL record stamped with
// this phase. Fails on RelaxedScans maps, which have no single cut.
func (m *ShardedMap) BulkLoadPhase(keys []int64) (added int, cut uint64, err error) {
	return m.s.BulkLoadPhase(keys)
}
