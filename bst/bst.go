// Package bst is the public API of the PNB-BST reproduction: concurrent
// sets of int64 keys with linearizable Insert, Delete, Contains and —
// for the PNB-BST — wait-free linearizable RangeScan and Snapshot.
//
// The primary type is Tree (the paper's PNB-BST). ShardedMap partitions
// the keyspace across several PNB-BSTs by fixed range boundaries for
// scale-out; the shards share one phase clock, so cross-shard scans and
// snapshots are single atomic cuts — linearizable like the single tree
// (DESIGN.md §5; RelaxedScans opts out). Map adds key-value bindings
// with a Put-replace operation. Three baseline implementations of the Set interface are
// provided for comparison and benchmarking: the NB-BST the tree is built
// on, a lock-based tree, and a lock-free skip list (optionally with
// snap-collector scans).
//
// Quickstart:
//
//	t := bst.New()
//	t.Insert(42)
//	t.Insert(7)
//	keys := t.RangeScan(0, 100) // [7 42], wait-free, linearizable
//	s := t.Snapshot()           // frozen point-in-time view
//	t.Delete(7)
//	s.Contains(7)               // still true in the snapshot
//
// Keys may be any int64 up to MaxKey (the top two values of the key
// space are reserved sentinels); methods panic on reserved keys.
package bst

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lockbst"
	"repro/internal/nbbst"
	"repro/internal/skiplist"
	"repro/internal/snapcollector"
)

// autoCompact runs compact every interval until the returned stop
// function is called (shared by Tree and ShardedMap).
func autoCompact(interval time.Duration, compact func()) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				compact()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// MaxKey is the largest key storable in any of the sets.
const MaxKey = core.MaxKey

// MinKey is the smallest storable key.
const MinKey = core.MinKey

// Set is the common interface of all implementations. Insert, Delete and
// Contains are linearizable on every implementation. RangeScan is
// linearizable and wait-free on the PNB-BST, linearizable but blocking on
// the locked tree, almost-consistent on the snap-collector set, and
// quiescently consistent only on the NB-BST and plain skip list (see the
// constructors).
type Set interface {
	// Insert adds k, reporting whether it was absent.
	Insert(k int64) bool
	// Delete removes k, reporting whether it was present.
	Delete(k int64) bool
	// Contains reports whether k is present.
	Contains(k int64) bool
	// RangeScan returns the keys in [a, b], ascending.
	RangeScan(a, b int64) []int64
	// Len returns the number of keys.
	Len() int
}

// Tree is the paper's PNB-BST. It implements Set and additionally offers
// wait-free Snapshot, allocation-free RangeScanFunc/RangeCount, and
// instrumentation counters. All methods are safe for concurrent use.
type Tree struct {
	t *core.Tree
}

// Snapshot is a wait-free immutable point-in-time view of a Tree. A live
// Snapshot pins the tree's version-reclamation horizon; call Release when
// done reading it (an unreachable Snapshot is released by the GC
// eventually, but explicit Release frees version memory promptly).
type Snapshot = core.Snapshot

// Stats is a copy of a Tree's instrumentation counters.
type Stats = core.StatsSnapshot

// CompactStats reports one version-pruning pass; see (*Tree).Compact.
type CompactStats = core.CompactStats

// New returns an empty PNB-BST.
func New() *Tree { return &Tree{t: core.New()} }

// Insert adds k, reporting whether it was absent. Non-blocking.
func (t *Tree) Insert(k int64) bool { return t.t.Insert(k) }

// Delete removes k, reporting whether it was present. Non-blocking.
func (t *Tree) Delete(k int64) bool { return t.t.Delete(k) }

// Contains reports whether k is present. Non-blocking.
func (t *Tree) Contains(k int64) bool { return t.t.Find(k) }

// RangeScan returns the keys in [a, b], ascending. Wait-free and
// linearizable.
func (t *Tree) RangeScan(a, b int64) []int64 { return t.t.RangeScan(a, b) }

// RangeScanFunc streams the keys in [a, b] in ascending order to visit
// without allocating; visit returning false stops early. Wait-free.
func (t *Tree) RangeScanFunc(a, b int64, visit func(k int64) bool) {
	t.t.RangeScanFunc(a, b, visit)
}

// RangeCount returns the number of keys in [a, b] without allocating.
// Wait-free.
func (t *Tree) RangeCount(a, b int64) int { return t.t.RangeCount(a, b) }

// Keys returns all keys, ascending. Wait-free.
func (t *Tree) Keys() []int64 { return t.t.Keys() }

// Len returns the number of keys. Wait-free.
func (t *Tree) Len() int { return t.t.Len() }

// Min returns the smallest key in the set, if any. Wait-free.
func (t *Tree) Min() (int64, bool) { return t.t.Min() }

// Max returns the largest key in the set, if any. Wait-free.
func (t *Tree) Max() (int64, bool) { return t.t.Max() }

// Succ returns the smallest key >= k, if any. Wait-free.
func (t *Tree) Succ(k int64) (int64, bool) { return t.t.Succ(k) }

// Pred returns the largest key <= k, if any. Wait-free.
func (t *Tree) Pred(k int64) (int64, bool) { return t.t.Pred(k) }

// Snapshot returns a frozen point-in-time view supporting wait-free
// Contains, Range, RangeScan, Keys and Len. The snapshot stays valid (and
// constant) regardless of later updates to the tree.
func (t *Tree) Snapshot() *Snapshot { return t.t.Snapshot() }

// Compact prunes version memory: superseded node versions that no
// in-flight RangeScan and no live Snapshot can still read are unlinked
// from the tree's prev chains, making them collectible by the garbage
// collector. Without compaction the tree retains every version ever
// created, so heap grows with the total update count; with periodic
// compaction steady-state memory is proportional to the live set plus
// the versions pinned by open snapshots. Safe concurrently with any mix
// of operations; scans running during a Compact stay wait-free and
// linearizable. See DESIGN.md §6.
func (t *Tree) Compact() CompactStats { return t.t.Compact() }

// StartAutoCompact runs Compact every interval on a background goroutine
// until the returned stop function is called. Typical intervals are
// hundreds of milliseconds to seconds: each pass costs a walk of the
// live version graph; a non-positive interval defaults to one second.
// The stop function is idempotent and waits for an in-flight pass to
// finish.
func (t *Tree) StartAutoCompact(interval time.Duration) (stop func()) {
	return autoCompact(interval, func() { t.Compact() })
}

// SetPooling enables or disables post-horizon node/info recycling
// (DESIGN.md §10). It defaults to on: Compact feeds version memory it
// proves unreachable back to per-tree pools instead of the GC, cutting
// steady-state allocs/op on the update path. The off position exists for
// the E12 ablation and for tests that need deterministic allocation
// counts; turning it off reverts cut versions to ordinary GC garbage.
func (t *Tree) SetPooling(on bool) { t.t.SetPooling(on) }

// PoolingEnabled reports whether post-horizon recycling is on.
func (t *Tree) PoolingEnabled() bool { return t.t.PoolingEnabled() }

// Stats returns the tree's instrumentation counters (retries, helps,
// handshake aborts, phases opened, compaction progress, pool traffic).
func (t *Tree) Stats() Stats { return t.t.Stats() }

// ClockNow returns the tree's current phase. The bool mirrors
// ShardedMap.ClockNow (a single tree always has a clock).
func (t *Tree) ClockNow() (uint64, bool) { return t.t.Clock().Now(), true }

// ResetStats zeroes the instrumentation counters.
func (t *Tree) ResetStats() { t.t.ResetStats() }

// --- Baselines -----------------------------------------------------------

// nbSet adapts the NB-BST baseline to Set. Its RangeScan is only
// quiescently consistent (NB-BST is the paper's no-range-query baseline).
type nbSet struct{ t *nbbst.Tree }

func (s nbSet) Insert(k int64) bool          { return s.t.Insert(k) }
func (s nbSet) Delete(k int64) bool          { return s.t.Delete(k) }
func (s nbSet) Contains(k int64) bool        { return s.t.Find(k) }
func (s nbSet) RangeScan(a, b int64) []int64 { return s.t.RangeScanUnsafe(a, b) }
func (s nbSet) Len() int                     { return s.t.Len() }

// NewNonBlockingBaseline returns the NB-BST of Ellen et al. (PODC 2010),
// the structure PNB-BST extends. Insert/Delete/Contains are linearizable
// and non-blocking; RangeScan is a best-effort traversal that is NOT
// linearizable under concurrent updates.
func NewNonBlockingBaseline() Set { return nbSet{t: nbbst.New()} }

// lockSet adapts the lock-based tree to Set.
type lockSet struct{ t *lockbst.Tree }

func (s lockSet) Insert(k int64) bool          { return s.t.Insert(k) }
func (s lockSet) Delete(k int64) bool          { return s.t.Delete(k) }
func (s lockSet) Contains(k int64) bool        { return s.t.Find(k) }
func (s lockSet) RangeScan(a, b int64) []int64 { return s.t.RangeScan(a, b) }
func (s lockSet) Len() int                     { return s.t.Len() }

// NewLocked returns a readers-writer-locked leaf-oriented BST: every
// operation is linearizable, but scans block updates and vice versa.
func NewLocked() Set { return lockSet{t: lockbst.New()} }

// slSet adapts the plain skip list to Set.
type slSet struct{ l *skiplist.List }

func (s slSet) Insert(k int64) bool          { return s.l.Insert(k) }
func (s slSet) Delete(k int64) bool          { return s.l.Delete(k) }
func (s slSet) Contains(k int64) bool        { return s.l.Find(k) }
func (s slSet) RangeScan(a, b int64) []int64 { return s.l.RangeScanUnsafe(a, b) }
func (s slSet) Len() int                     { return s.l.Len() }

// NewSkipList returns a lock-free skip list set. Insert/Delete/Contains
// are linearizable and non-blocking; RangeScan is a best-effort
// bottom-level traversal that is NOT linearizable under concurrency.
func NewSkipList() Set { return slSet{l: skiplist.New()} }

// NewSnapCollector returns a skip list whose RangeScan uses the
// Petrank–Timnat snap-collector protocol: non-blocking (but not
// wait-free) nearly-consistent scans, the related-work comparator for
// the PNB-BST's RangeScan.
func NewSnapCollector() Set { return snapcollector.New() }
