package bst_test

import (
	"testing"

	"repro/bst"
	"repro/internal/workload"
)

// TestShardRoutingConsistentAcrossMigrations pins the ShardOf /
// ShardBounds contract — every key routes to exactly the shard whose
// bounds contain it, and the bounds tile the key space with no gaps or
// overlaps — and re-checks it after Split and Merge change the shard
// map, against data that must stay reachable through the new routes.
func TestShardRoutingConsistentAcrossMigrations(t *testing.T) {
	const keys = 1 << 12
	m := bst.NewShardedRange(0, keys-1, 4)
	rng := workload.NewRNG(3)
	inserted := map[int64]bool{}
	for i := 0; i < keys/2; i++ {
		k := rng.Intn(keys)
		m.Insert(k)
		inserted[k] = true
	}

	checkRouting := func(when string) {
		t.Helper()
		p := m.Shards()
		// Bounds tile the whole key space in order.
		lo0, _ := m.ShardBounds(0)
		if lo0 != bst.MinKey {
			t.Fatalf("%s: shard 0 starts at %d, not MinKey", when, lo0)
		}
		_, hiLast := m.ShardBounds(p - 1)
		if hiLast != bst.MaxKey {
			t.Fatalf("%s: shard %d ends at %d, not MaxKey", when, p-1, hiLast)
		}
		for i := 0; i < p-1; i++ {
			_, hi := m.ShardBounds(i)
			nextLo, _ := m.ShardBounds(i + 1)
			if nextLo != hi+1 {
				t.Fatalf("%s: shard %d ends at %d but shard %d starts at %d", when, i, hi, i+1, nextLo)
			}
		}
		// ShardOf agrees with ShardBounds: bounds route to their own
		// shard, and sampled keys route to a shard whose bounds hold them.
		for i := 0; i < p; i++ {
			lo, hi := m.ShardBounds(i)
			if m.ShardOf(lo) != i || m.ShardOf(hi) != i {
				t.Fatalf("%s: bounds of shard %d route to shards %d/%d", when, i, m.ShardOf(lo), m.ShardOf(hi))
			}
		}
		for k := int64(0); k < keys; k += 37 {
			i := m.ShardOf(k)
			lo, hi := m.ShardBounds(i)
			if k < lo || k > hi {
				t.Fatalf("%s: key %d routed to shard %d owning [%d, %d]", when, k, i, lo, hi)
			}
		}
		// The data is still reachable through the (possibly new) routes.
		for k := range inserted {
			if !m.Contains(k) {
				t.Fatalf("%s: key %d lost", when, k)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", when, err)
		}
	}

	checkRouting("initial")
	hot := m.ShardOf(keys / 8) // a shard holding plenty of keys
	if err := m.Split(hot); err != nil {
		t.Fatalf("Split: %v", err)
	}
	if m.Shards() != 5 {
		t.Fatalf("Shards after split = %d", m.Shards())
	}
	checkRouting("after split")
	if err := m.Merge(hot); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Shards() != 4 {
		t.Fatalf("Shards after merge = %d", m.Shards())
	}
	checkRouting("after merge")
	if splits, merges := m.Migrations(); splits != 1 || merges != 1 {
		t.Fatalf("Migrations = %d, %d", splits, merges)
	}
}

// TestShardedStatsMonotonic pins the Stats/ResetStats contract: counters
// only grow under load (cumulatively across migrations), Scans counts
// logical scans (not per-shard visits), and ResetStats zeroes the lot.
func TestShardedStatsMonotonic(t *testing.T) {
	const keys = 1 << 10
	m := bst.NewShardedRange(0, keys-1, 4)
	rng := workload.NewRNG(11)
	for i := 0; i < 2000; i++ {
		k := rng.Intn(keys)
		if i%2 == 0 {
			m.Insert(k)
		} else {
			m.Delete(k)
		}
	}
	for i := 0; i < 7; i++ {
		m.RangeScan(0, keys-1) // spans all 4 shards; must count once each
	}
	st1 := m.Stats()
	if st1.Scans != 7 {
		t.Fatalf("Scans = %d after 7 logical scans (per-shard phase opens must not be summed)", st1.Scans)
	}

	// More load of every kind, plus a migration: counters must not move
	// backwards (migration folds retired trees' counters in).
	if err := m.Split(0); err != nil {
		t.Fatalf("Split: %v", err)
	}
	for i := 0; i < 2000; i++ {
		k := rng.Intn(keys)
		if i%2 == 0 {
			m.Insert(k)
		} else {
			m.Delete(k)
		}
	}
	m.RangeScan(0, keys-1)
	st2 := m.Stats()
	if st2.Scans < st1.Scans+1 {
		t.Fatalf("Scans moved backwards: %d then %d", st1.Scans, st2.Scans)
	}
	for _, c := range []struct {
		name   string
		v1, v2 uint64
	}{
		{"RetriesInsert", st1.RetriesInsert, st2.RetriesInsert},
		{"RetriesDelete", st1.RetriesDelete, st2.RetriesDelete},
		{"RetriesFind", st1.RetriesFind, st2.RetriesFind},
		{"RetriesHorizon", st1.RetriesHorizon, st2.RetriesHorizon},
		{"Helps", st1.Helps, st2.Helps},
		{"HandshakeAborts", st1.HandshakeAborts, st2.HandshakeAborts},
		{"Compactions", st1.Compactions, st2.Compactions},
		{"PrunedLinks", st1.PrunedLinks, st2.PrunedLinks},
	} {
		if c.v2 < c.v1 {
			t.Errorf("%s moved backwards across a migration: %d then %d", c.name, c.v1, c.v2)
		}
	}

	m.ResetStats()
	st3 := m.Stats()
	if st3.Scans != 0 || st3.Helps != 0 || st3.RetriesInsert != 0 || st3.HandshakeAborts != 0 {
		t.Fatalf("ResetStats left %+v", st3)
	}
	// Counters resume from zero.
	m.RangeScan(0, keys-1)
	if got := m.Stats().Scans; got != 1 {
		t.Fatalf("Scans after reset = %d", got)
	}
}
