package bst_test

import (
	"testing"
	"time"

	"repro/bst"
	"repro/internal/workload"
)

// TestTreeCompactPublicAPI: the public Compact knob bounds version
// memory and reports progress through Stats.
func TestTreeCompactPublicAPI(t *testing.T) {
	tr := bst.New()
	rng := workload.NewRNG(3)
	for i := 0; i < 20_000; i++ {
		k := rng.Intn(512)
		if rng.Intn(2) == 0 {
			tr.Insert(k)
		} else {
			tr.Delete(k)
		}
	}
	want := tr.Keys()
	cs := tr.Compact()
	if cs.PrunedLinks == 0 {
		t.Fatalf("Compact on a churned tree pruned nothing: %+v", cs)
	}
	if cs.LiveNodes > 4*tr.Len()+16 {
		t.Fatalf("post-Compact live nodes = %d for %d keys", cs.LiveNodes, tr.Len())
	}
	got := tr.Keys()
	if len(got) != len(want) {
		t.Fatalf("Compact changed contents: %d vs %d keys", len(got), len(want))
	}
	st := tr.Stats()
	if st.Compactions != 1 || st.PrunedLinks != cs.PrunedLinks {
		t.Fatalf("stats gauges: %+v", st)
	}
}

// TestSnapshotReleaseSemantics: a released snapshot no longer pins
// version memory; an unreleased one keeps its view through Compact.
func TestSnapshotReleaseSemantics(t *testing.T) {
	tr := bst.New()
	for k := int64(0); k < 100; k++ {
		tr.Insert(k)
	}
	snap := tr.Snapshot()
	for k := int64(0); k < 100; k += 2 {
		tr.Delete(k)
	}
	tr.Compact()
	if n := snap.Len(); n != 100 {
		t.Fatalf("pinned snapshot sees %d keys, want 100", n)
	}
	snap.Release()
	cs := tr.Compact()
	if cs.PrunedLinks == 0 {
		t.Fatal("Compact after Release pruned nothing")
	}
	if n := tr.Len(); n != 50 {
		t.Fatalf("live tree has %d keys, want 50", n)
	}
}

// TestAutoCompactBoundsMemory: StartAutoCompact keeps the version graph
// bounded under churn without any explicit Compact calls.
func TestAutoCompactBoundsMemory(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		var (
			set  bst.Set
			stop func()
			stat func() bst.Stats
		)
		if sharded {
			m := bst.NewShardedRange(0, 511, 4)
			stop = m.StartAutoCompact(5 * time.Millisecond)
			set, stat = m, m.Stats
		} else {
			tr := bst.New()
			stop = tr.StartAutoCompact(5 * time.Millisecond)
			set, stat = tr, tr.Stats
		}
		rng := workload.NewRNG(17)
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			k := rng.Intn(512)
			if rng.Intn(2) == 0 {
				set.Insert(k)
			} else {
				set.Delete(k)
			}
		}
		stop()
		stop() // idempotent
		if st := stat(); st.Compactions == 0 || st.PrunedLinks == 0 {
			t.Fatalf("sharded=%v: auto-compaction never pruned: %+v", sharded, st)
		}
	}
}
