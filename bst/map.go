package bst

import (
	"time"

	"repro/internal/pnbmap"
)

// Map is a persistent non-blocking BST map from int64 keys to values of
// type V — the key-value extension of the paper's set (DESIGN.md §3). It
// adds a Put-replace operation: binding a new value to an existing key
// installs a fresh leaf whose prev pointer keeps the old value readable
// in earlier phases, so snapshots observe the value that was bound when
// they were taken.
//
// Put, Delete and Get are non-blocking; EntriesFunc, RangeCount and
// MapSnapshot reads are wait-free and linearizable. All methods are safe
// for concurrent use.
type Map[V any] struct {
	m *pnbmap.Map[V]
}

// MapEntry is one key-value pair returned by map scans.
type MapEntry[V any] struct {
	Key int64
	Val V
}

// MapSnapshot is a frozen point-in-time view of a Map.
type MapSnapshot[V any] struct {
	s *pnbmap.Snapshot[V]
}

// NewMap returns an empty map.
func NewMap[V any]() *Map[V] { return &Map[V]{m: pnbmap.New[V]()} }

// Put binds k to v, reporting whether an existing binding was replaced.
func (m *Map[V]) Put(k int64, v V) (replaced bool) { return m.m.Put(k, v) }

// Get returns the value bound to k, if any.
func (m *Map[V]) Get(k int64) (V, bool) { return m.m.Get(k) }

// Contains reports whether k is bound.
func (m *Map[V]) Contains(k int64) bool { return m.m.Contains(k) }

// Delete unbinds k, reporting whether it was bound.
func (m *Map[V]) Delete(k int64) bool { return m.m.Delete(k) }

// Entries returns the entries with keys in [a, b], ascending by key.
// Wait-free and linearizable.
func (m *Map[V]) Entries(a, b int64) []MapEntry[V] {
	var out []MapEntry[V]
	m.m.RangeScanFunc(a, b, func(k int64, v V) bool {
		out = append(out, MapEntry[V]{k, v})
		return true
	})
	return out
}

// EntriesFunc streams entries in [a, b] ascending without allocating;
// visit returning false stops early. Wait-free.
func (m *Map[V]) EntriesFunc(a, b int64, visit func(k int64, v V) bool) {
	m.m.RangeScanFunc(a, b, visit)
}

// RangeCount returns the number of bound keys in [a, b]. Wait-free.
func (m *Map[V]) RangeCount(a, b int64) int { return m.m.RangeCount(a, b) }

// Keys returns all bound keys, ascending. Wait-free.
func (m *Map[V]) Keys() []int64 { return m.m.Keys() }

// Len returns the number of bound keys. Wait-free.
func (m *Map[V]) Len() int { return m.m.Len() }

// Compact prunes version memory: superseded key-value versions that no
// in-flight scan and no live MapSnapshot can still read become
// collectible by the garbage collector. Same semantics and safety as
// (*Tree).Compact (DESIGN.md §6); LiveNodes/PrunedLinks are reported via
// the returned core-compatible stats shape.
func (m *Map[V]) Compact() CompactStats {
	// The two stats structs are field-identical; a conversion (rather
	// than a copy) breaks the build if they ever drift.
	return CompactStats(m.m.Compact())
}

// StartAutoCompact runs Compact every interval on a background goroutine
// until the returned stop function is called; see (*Tree).StartAutoCompact.
func (m *Map[V]) StartAutoCompact(interval time.Duration) (stop func()) {
	return autoCompact(interval, func() { m.Compact() })
}

// Snapshot returns a frozen point-in-time view of the map. The snapshot
// pins the map's version-reclamation horizon until released.
func (m *Map[V]) Snapshot() *MapSnapshot[V] { return &MapSnapshot[V]{s: m.m.Snapshot()} }

// Release withdraws the snapshot's hold on the reclamation horizon;
// idempotent. Reading the snapshot afterwards is a bug.
func (s *MapSnapshot[V]) Release() { s.s.Release() }

// Seq returns the snapshot's phase number.
func (s *MapSnapshot[V]) Seq() uint64 { return s.s.Seq() }

// Get returns the value bound to k at the snapshot's phase.
func (s *MapSnapshot[V]) Get(k int64) (V, bool) { return s.s.Get(k) }

// Range streams the snapshot's entries in [a, b], ascending.
func (s *MapSnapshot[V]) Range(a, b int64, visit func(k int64, v V) bool) {
	s.s.Range(a, b, visit)
}

// Len returns the number of keys bound at the snapshot's phase.
func (s *MapSnapshot[V]) Len() int { return s.s.Len() }
