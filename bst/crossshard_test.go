package bst_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/bst"
	"repro/internal/lincheck"
)

// TestShardedMoveAtomicCut is the ShardedMap-level failing-first
// regression for the §5.2 cross-shard anomaly: a concurrent
// cross-boundary move (delete the item's key on one side of a shard
// boundary, insert its new key on the other) must be invisible to an
// in-flight multi-shard scan — the scan is ONE atomic cut. The racing
// move is forced deterministically from inside the scan's visitor (which
// runs between the per-shard cuts), so before the shared phase clock
// this test failed on every run; the anomalous interleaving it pins is
// reproduced — also deterministically — by TestShardedRelaxedMoveAnomaly
// below.
func TestShardedMoveAtomicCut(t *testing.T) {
	// Boundary at 512: sentinel 10 drives the visitor; the item moves
	// 400 -> 600 (delete from shard 0, insert into shard 1).
	m := bst.NewShardedRange(0, 1023, 2)
	m.Insert(10)
	m.Insert(400)
	moved := false
	var got []int64
	m.RangeScanFunc(0, 1023, func(k int64) bool {
		if !moved {
			moved = true
			m.Delete(400)
			m.Insert(600)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 10 || got[1] != 400 {
		t.Fatalf("mid-move scan = %v, want the pre-move atomic cut [10 400]", got)
	}
}

// TestShardedRelaxedMoveAnomaly pins what RelaxedScans (and every
// ShardedMap before the shared clock) does on the same schedule: the
// delete is invisible to the already-cut shard, the insert visible to
// the not-yet-cut one, so the scan reports the item in BOTH places —
// a set no instant ever held, rejected by the scan-aware checker.
func TestShardedRelaxedMoveAnomaly(t *testing.T) {
	m := bst.NewShardedRange(0, 1023, 2, bst.RelaxedScans())
	if !m.Relaxed() {
		t.Fatal("RelaxedScans option not applied")
	}
	var points []lincheck.Event
	record := func(kind lincheck.OpKind, k int64, f func() bool) {
		inv := time.Now().UnixNano()
		ret := f()
		points = append(points, lincheck.Event{
			Kind: kind, Key: k, Ret: ret, Inv: inv, Res: time.Now().UnixNano(),
		})
	}
	record(lincheck.Insert, 10, func() bool { return m.Insert(10) })
	record(lincheck.Insert, 400, func() bool { return m.Insert(400) })
	moved := false
	start := time.Now().UnixNano()
	var got []int64
	m.RangeScanFunc(0, 1023, func(k int64) bool {
		if !moved {
			moved = true
			// The delete completes before the insert begins, so no
			// linearization can have 400 and 600 present at once.
			record(lincheck.Delete, 400, func() bool { return m.Delete(400) })
			record(lincheck.Insert, 600, func() bool { return m.Insert(600) })
		}
		got = append(got, k)
		return true
	})
	if len(got) != 3 {
		t.Fatalf("relaxed mid-move scan = %v, want the anomalous [10 400 600]", got)
	}
	// Encoded as a history, the observation is non-linearizable: 400 and
	// 600 were never both present (checked against the seqset oracle).
	scan := lincheck.ScanEvent{A: 0, B: 1023, Keys: got, Inv: start, Res: time.Now().UnixNano()}
	if err := lincheck.CheckWithScans(points, []lincheck.ScanEvent{scan}); err == nil {
		t.Fatal("scan-aware checker accepted the relaxed both-places anomaly")
	}
}

// TestShardedCrossBoundaryMoveLincheck is the concurrent regression
// required by the atomic-cut guarantee: a mover shuttles an item back
// and forth across a shard boundary while scanners take continuous
// multi-shard scans of the ShardedMap; the combined history of point
// operations and scan observations must be linearizable against the
// seqset oracle (lincheck.CheckWithScans).
func TestShardedCrossBoundaryMoveLincheck(t *testing.T) {
	const (
		rounds   = 40
		kL, kR   = 511, 512 // opposite sides of the shard-0/1 boundary
		moves    = 8
		scanners = 2
		scansPer = 5
	)
	for round := 0; round < rounds; round++ {
		m := bst.NewShardedRange(0, 1023, 4)
		var points []lincheck.Event
		record := func(kind lincheck.OpKind, k int64, inv int64, ret bool) {
			points = append(points, lincheck.Event{
				Kind: kind, Key: k, Ret: ret, Inv: inv, Res: time.Now().UnixNano(),
			})
		}
		record(lincheck.Insert, kL, time.Now().UnixNano(), m.Insert(kL))

		scanHistories := make([][]lincheck.ScanEvent, scanners)
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(1)
		go func() { // mover: delete from shard i, insert into shard i±1
			defer wg.Done()
			<-start
			src, dst := int64(kL), int64(kR)
			for i := 0; i < moves; i++ {
				inv := time.Now().UnixNano()
				record(lincheck.Insert, dst, inv, m.Insert(dst))
				inv = time.Now().UnixNano()
				record(lincheck.Delete, src, inv, m.Delete(src))
				src, dst = dst, src
			}
		}()
		for w := 0; w < scanners; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < scansPer; i++ {
					inv := time.Now().UnixNano()
					keys := m.RangeScan(0, 1023)
					scanHistories[w] = append(scanHistories[w], lincheck.ScanEvent{
						A: 0, B: 1023, Keys: keys,
						Inv: inv, Res: time.Now().UnixNano(),
					})
				}
			}(w)
		}
		close(start)
		wg.Wait()
		var scans []lincheck.ScanEvent
		for _, h := range scanHistories {
			scans = append(scans, h...)
		}
		if err := lincheck.CheckWithScans(points, scans); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestShardedSnapshotReadAfterRelease: the composite snapshot detects
// the read-after-Release misuse at the public call site, with a message
// naming it (instead of an opaque "version chain pruned" panic deep in
// core once pruning has run).
func TestShardedSnapshotReadAfterRelease(t *testing.T) {
	m := bst.NewShardedRange(0, 1023, 4)
	for k := int64(0); k < 100; k += 10 {
		m.Insert(k)
	}
	snap := m.Snapshot()
	if snap.Len() != 10 {
		t.Fatalf("live snapshot Len = %d", snap.Len())
	}
	snap.Release()
	for what, read := range map[string]func(){
		"Contains":  func() { snap.Contains(50) },
		"Keys":      func() { snap.Keys() },
		"RangeScan": func() { snap.RangeScan(0, 100) },
		"Len":       func() { snap.Len() },
	} {
		func() {
			defer func() {
				r := recover()
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "released composite Snapshot") {
					t.Fatalf("%s after Release: got %v, want the misuse panic", what, r)
				}
			}()
			read()
		}()
	}
	snap.Release() // idempotent
}
